package core_test

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/simulate"
)

// These tests state the paper's calibration claims as invariances: the
// pipeline output must be unchanged by exactly the hardware corruptions the
// design cancels — per-packet common phase (CFO), per-packet linear phase in
// subcarrier index (SFO/PBD), and per-packet common gain (AGC).

// corruptSession applies f to every packet of a (deep-copied) session.
func corruptSession(t *testing.T, s *csi.Session, f func(pktIdx int, m *csi.Matrix)) *csi.Session {
	t.Helper()
	clone := &csi.Session{Carrier: s.Carrier}
	copyCapture := func(c *csi.Capture, base int) csi.Capture {
		var out csi.Capture
		for i := range c.Packets {
			pkt := c.Packets[i]
			pkt.CSI = pkt.CSI.Clone()
			f(base+i, pkt.CSI)
			out.Packets = append(out.Packets, pkt)
		}
		return out
	}
	clone.Baseline = copyCapture(&s.Baseline, 0)
	clone.Target = copyCapture(&s.Target, s.Baseline.Len())
	return clone
}

func testSession(t *testing.T) *csi.Session {
	t.Helper()
	db := material.PaperDatabase()
	milk, err := db.Get(material.Milk)
	if err != nil {
		t.Fatal(err)
	}
	sc := simulate.Default()
	sc.Liquid = &milk
	s, err := simulate.Session(sc, 77)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func featuresOf(t *testing.T, s *csi.Session) []float64 {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.ForcedSubcarriers = []int{0, 1, 2, 3, 9, 10, 12, 14} // fixed, so selection can't mask drift
	feats, err := core.ExtractFeatures(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return feats.Vector
}

func assertVectorsEqual(t *testing.T, name string, a, b []float64, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			t.Errorf("%s: feature %d changed %v → %v", name, i, a[i], b[i])
		}
	}
}

func TestFeaturesInvariantToCommonPhase(t *testing.T) {
	// Extra per-packet CFO (common across antennas and subcarriers) must
	// cancel in the phase difference — Eq. 6's core claim.
	s := testSession(t)
	ref := featuresOf(t, s)
	rng := rand.New(rand.NewSource(1))
	corrupted := corruptSession(t, s, func(_ int, m *csi.Matrix) {
		rot := cmplx.Rect(1, rng.Float64()*2*math.Pi)
		for ant := range m.Values {
			for sub := range m.Values[ant] {
				m.Values[ant][sub] *= rot
			}
		}
	})
	assertVectorsEqual(t, "common phase", ref, featuresOf(t, corrupted), 1e-9)
}

func TestFeaturesInvariantToSFOSlope(t *testing.T) {
	// Extra per-packet linear phase k·(λb+λs), identical across antennas,
	// must also cancel (the board shares sampling clocks).
	s := testSession(t)
	ref := featuresOf(t, s)
	rng := rand.New(rand.NewSource(2))
	corrupted := corruptSession(t, s, func(_ int, m *csi.Matrix) {
		slope := rng.NormFloat64() * 2
		for ant := range m.Values {
			for sub := range m.Values[ant] {
				idx, err := csi.SubcarrierIndex(sub)
				if err != nil {
					t.Fatal(err)
				}
				m.Values[ant][sub] *= cmplx.Rect(1, slope*float64(idx))
			}
		}
	})
	assertVectorsEqual(t, "SFO slope", ref, featuresOf(t, corrupted), 1e-9)
}

func TestFeaturesInvariantToConstantGain(t *testing.T) {
	// A constant receiver gain must cancel exactly: every pipeline stage is
	// scale-equivariant (3σ masks, wavelet thresholds) and the ratio
	// divides the common factor out.
	s := testSession(t)
	ref := featuresOf(t, s)
	corrupted := corruptSession(t, s, func(_ int, m *csi.Matrix) {
		for ant := range m.Values {
			for sub := range m.Values[ant] {
				m.Values[ant][sub] *= 3.7
			}
		}
	})
	assertVectorsEqual(t, "constant gain", ref, featuresOf(t, corrupted), 1e-9)
}

func TestFeaturesApproxInvariantToPerPacketGain(t *testing.T) {
	// PER-PACKET gain jitter (AGC hunting) cancels in the ratio only
	// approximately: the paper's pipeline denoises each antenna's series
	// BEFORE dividing, and the denoiser's masks depend on the jittered
	// series. The features must stay close (≪ class separations ~0.1-0.5)
	// but not bit-identical.
	s := testSession(t)
	ref := featuresOf(t, s)
	rng := rand.New(rand.NewSource(3))
	corrupted := corruptSession(t, s, func(_ int, m *csi.Matrix) {
		g := complex(0.5+rng.Float64(), 0) // ±50% swings, far beyond real AGC
		for ant := range m.Values {
			for sub := range m.Values[ant] {
				m.Values[ant][sub] *= g
			}
		}
	})
	assertVectorsEqual(t, "per-packet gain", ref, featuresOf(t, corrupted), 0.05)
}

func TestFeaturesInvariantToStaticAntennaPhases(t *testing.T) {
	// Fixed per-antenna phase offsets (cable lengths) shift the phase
	// difference identically in baseline and target, so the Eq. 18
	// difference cancels them.
	s := testSession(t)
	ref := featuresOf(t, s)
	offsets := []float64{0.7, -1.3, 2.1}
	corrupted := corruptSession(t, s, func(_ int, m *csi.Matrix) {
		for ant := range m.Values {
			rot := cmplx.Rect(1, offsets[ant%len(offsets)])
			for sub := range m.Values[ant] {
				m.Values[ant][sub] *= rot
			}
		}
	})
	assertVectorsEqual(t, "static antenna phases", ref, featuresOf(t, corrupted), 1e-9)
}

func TestFeaturesNotInvariantToPerAntennaPhaseNoise(t *testing.T) {
	// Sanity check on the test method itself: per-antenna, per-packet phase
	// noise does NOT cancel — the features must move. (If this test fails,
	// the invariance tests above are vacuous.)
	s := testSession(t)
	ref := featuresOf(t, s)
	rng := rand.New(rand.NewSource(4))
	corrupted := corruptSession(t, s, func(_ int, m *csi.Matrix) {
		for ant := range m.Values {
			rot := cmplx.Rect(1, rng.NormFloat64()*0.5)
			for sub := range m.Values[ant] {
				m.Values[ant][sub] *= rot
			}
		}
	})
	moved := featuresOf(t, corrupted)
	var delta float64
	for i := range ref {
		delta += math.Abs(ref[i] - moved[i])
	}
	if delta < 1e-6 {
		t.Error("per-antenna phase noise left features unchanged — invariance tests are vacuous")
	}
}
