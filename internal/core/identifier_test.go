package core_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/simulate"
)

// liquidSessions generates `trials` lab sessions for each named liquid.
func liquidSessions(t *testing.T, liquids []string, trials int) (sessions []*csi.Session, labels []string) {
	t.Helper()
	db := material.PaperDatabase()
	for mi, name := range liquids {
		m, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := simulate.Default()
		sc.Liquid = &m
		for trial := 0; trial < trials; trial++ {
			s, err := simulate.Session(sc, int64(mi*100000+trial*7919))
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	return sessions, labels
}

func TestIdentifierTrainAndIdentify(t *testing.T) {
	// End-to-end: train on three well-separated liquids in the lab room,
	// identify held-out sessions of the same liquids.
	liquids := []string{material.PureWater, material.Honey, material.Oil}
	sessions, labels := liquidSessions(t, liquids, 8)
	cfg := core.IdentifierConfig{Pipeline: core.DefaultConfig()}

	// Hold out the last 2 trials per liquid (they sit at the end of each
	// 8-session block).
	var trainS, testS []*csi.Session
	var trainL, testL []string
	for i := range sessions {
		if i%8 < 6 {
			trainS = append(trainS, sessions[i])
			trainL = append(trainL, labels[i])
		} else {
			testS = append(testS, sessions[i])
			testL = append(testL, labels[i])
		}
	}
	id, err := core.TrainIdentifier(trainS, trainL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, s := range testS {
		got, err := id.Identify(s)
		if err != nil {
			t.Fatal(err)
		}
		if got == testL[i] {
			correct++
		}
	}
	if correct < len(testS)-1 {
		t.Errorf("identified %d/%d well-separated liquids", correct, len(testS))
	}
}

func TestIdentifierValidation(t *testing.T) {
	cfg := core.IdentifierConfig{Pipeline: core.DefaultConfig()}
	if _, err := core.TrainIdentifier(nil, nil, cfg); err == nil {
		t.Error("empty training set should error")
	}
	sessions, labels := liquidSessions(t, []string{material.PureWater}, 1)
	if _, err := core.TrainIdentifier(sessions, labels[:0], cfg); err == nil {
		t.Error("label length mismatch should error")
	}
}

func TestIdentifierKNNBackend(t *testing.T) {
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey}, 5)
	cfg := core.IdentifierConfig{Pipeline: core.DefaultConfig(), Kind: core.ClassifierKNN}
	id, err := core.TrainIdentifier(sessions, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := id.Identify(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != labels[0] {
		t.Errorf("kNN identified %q, want %q", got, labels[0])
	}
}

func TestIdentifierUnknownBackend(t *testing.T) {
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey}, 1)
	cfg := core.IdentifierConfig{Pipeline: core.DefaultConfig(), Kind: core.ClassifierKind(99)}
	if _, err := core.TrainIdentifier(sessions, labels, cfg); err == nil {
		t.Error("unknown classifier kind should error")
	}
}

func TestIdentifyFeaturesDirect(t *testing.T) {
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey}, 5)
	cfg := core.IdentifierConfig{Pipeline: core.DefaultConfig()}
	id, err := core.TrainIdentifier(sessions, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feats, err := core.ExtractFeatures(sessions[0], cfg.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if got := id.IdentifyFeatures(feats.Vector); got != labels[0] {
		t.Errorf("IdentifyFeatures = %q, want %q", got, labels[0])
	}
}

func TestIdentifierAutoTune(t *testing.T) {
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey, material.Oil}, 6)
	cfg := core.IdentifierConfig{Pipeline: core.DefaultConfig(), AutoTune: true}
	id, err := core.TrainIdentifier(sessions, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tuned model must still classify the training data correctly on a
	// well-separated task.
	correct := 0
	for i, s := range sessions {
		got, err := id.Identify(s)
		if err != nil {
			t.Fatal(err)
		}
		if got == labels[i] {
			correct++
		}
	}
	if correct < len(sessions)-1 {
		t.Errorf("auto-tuned identifier got %d/%d", correct, len(sessions))
	}
}

func TestNoveltyScoreSeparatesStranger(t *testing.T) {
	// Train without liquor; liquor sessions must score far higher than
	// known liquids.
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey, material.Oil}, 8)
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	knownScore, err := id.NoveltyScore(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	strangerSessions, _ := liquidSessions(t, []string{material.Liquor}, 1)
	strangerScore, err := id.NoveltyScore(strangerSessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if strangerScore < 3 {
		t.Errorf("stranger novelty %v, want > 3", strangerScore)
	}
	if knownScore > 2 {
		t.Errorf("training-session novelty %v, want small", knownScore)
	}
	if strangerScore < 2*knownScore {
		t.Errorf("no separation: stranger %v vs known %v", strangerScore, knownScore)
	}
}

func TestIdentifyWithConfidence(t *testing.T) {
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey, material.Oil}, 6)
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	label, conf, err := id.IdentifyWithConfidence(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if label != labels[0] {
		t.Errorf("label = %q, want %q", label, labels[0])
	}
	if conf < 0 || conf > 1 {
		t.Errorf("confidence %v outside [0,1]", conf)
	}
	// Well-separated training data should classify with full confidence.
	if conf < 0.99 {
		t.Errorf("confidence %v, want ≈1 on separable data", conf)
	}
}

func TestNoveltySurvivesSaveLoad(t *testing.T) {
	sessions, labels := liquidSessions(t, []string{material.PureWater, material.Honey}, 5)
	id, err := core.TrainIdentifier(sessions, labels, core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := id.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadIdentifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := id.NoveltyScore(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.NoveltyScore(sessions[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("novelty score changed across save/load: %v vs %v", a, b)
	}
}
