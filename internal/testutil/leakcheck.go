// Package testutil holds helpers shared across the repo's test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count and returns a function that
// asserts the count has returned to within slack of the snapshot,
// polling (with GC nudges) for up to 10 seconds before failing with a
// full stack dump. The standard shape:
//
//	defer testutil.LeakCheck(t, 3)()
//
// Slack absorbs runtime helpers (netpoll workers, finalizer goroutine)
// that exit asynchronously; the serve and transport chaos tests use 2–3.
func LeakCheck(t testing.TB, slack int) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		var after int
		for {
			runtime.GC()
			after = runtime.NumGoroutine()
			if after <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked: %d before, %d after (slack %d)\n%s",
			before, after, slack, buf[:n])
	}
}
