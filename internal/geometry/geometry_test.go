package geometry

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, 2}
	if got := p.Sub(q); got != (Point{2, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Add(q); got != (Point{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist(q); !mathx.AlmostEqual(got, math.Sqrt(8), 1e-12) {
		t.Errorf("Dist = %v", got)
	}
}

func TestChordThroughCenterIsDiameter(t *testing.T) {
	c := Circle{Center: Point{1, 0}, Radius: 0.0715}
	// Segment along the x-axis straight through the center.
	got := c.ChordLength(Point{0, 0}, Point{2, 0})
	if !mathx.AlmostEqual(got, 0.143, 1e-9) {
		t.Errorf("chord through center = %v, want diameter 0.143", got)
	}
}

func TestChordOffCenter(t *testing.T) {
	c := Circle{Center: Point{1, 0}, Radius: 0.0715}
	// A horizontal ray at lateral offset d cuts a chord 2·sqrt(r²−d²).
	d := 0.03
	got := c.ChordLength(Point{0, d}, Point{2, d})
	want := 2 * math.Sqrt(0.0715*0.0715-d*d)
	if !mathx.AlmostEqual(got, want, 1e-9) {
		t.Errorf("offset chord = %v, want %v", got, want)
	}
}

func TestChordMiss(t *testing.T) {
	c := Circle{Center: Point{1, 0}, Radius: 0.05}
	if got := c.ChordLength(Point{0, 0.2}, Point{2, 0.2}); got != 0 {
		t.Errorf("missing ray chord = %v, want 0", got)
	}
	// Tangent ray: zero-length chord.
	if got := c.ChordLength(Point{0, 0.05}, Point{2, 0.05}); got > 1e-6 {
		t.Errorf("tangent chord = %v, want ≈0", got)
	}
}

func TestChordSegmentClipping(t *testing.T) {
	c := Circle{Center: Point{0, 0}, Radius: 1}
	// Segment ending inside the circle: chord runs from entry to endpoint.
	got := c.ChordLength(Point{-2, 0}, Point{0, 0})
	if !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("clipped chord = %v, want 1", got)
	}
	// Segment fully inside.
	got = c.ChordLength(Point{-0.3, 0}, Point{0.4, 0})
	if !mathx.AlmostEqual(got, 0.7, 1e-12) {
		t.Errorf("inside chord = %v, want 0.7", got)
	}
}

func TestChordDegenerateSegment(t *testing.T) {
	c := Circle{Center: Point{0, 0}, Radius: 1}
	if got := c.ChordLength(Point{0, 0}, Point{0, 0}); got != 0 {
		t.Errorf("zero segment chord = %v, want 0", got)
	}
}

// Property: the chord never exceeds the diameter nor the segment length.
func TestChordBoundsProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, rRaw float64) bool {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, rRaw} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		mod := func(v float64) float64 { return math.Mod(v, 10) }
		a := Point{mod(ax), mod(ay)}
		b := Point{mod(bx), mod(by)}
		c := Circle{Center: Point{mod(cx), mod(cy)}, Radius: math.Abs(mod(rRaw)) + 0.01}
		chord := c.ChordLength(a, b)
		if chord < 0 {
			return false
		}
		return chord <= 2*c.Radius+1e-9 && chord <= a.Dist(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	c := Circle{Center: Point{0, 0}, Radius: 1}
	if !c.Contains(Point{0.5, 0}) {
		t.Error("interior point not contained")
	}
	if c.Contains(Point{2, 0}) {
		t.Error("exterior point contained")
	}
	if c.Contains(Point{1, 0}) {
		t.Error("boundary point should not be strictly contained")
	}
}

func TestLinearArray(t *testing.T) {
	// 3 antennas spaced λ/2 ≈ 2.8 cm, facing along -x (normal toward Tx).
	ants, err := LinearArray(Point{2, 0}, 3, 0.028, Point{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(ants) != 3 {
		t.Fatalf("len = %d", len(ants))
	}
	// Centred on the array center.
	if !mathx.AlmostEqual(ants[1].X, 2, 1e-12) || !mathx.AlmostEqual(ants[1].Y, 0, 1e-12) {
		t.Errorf("middle antenna = %v, want (2,0)", ants[1])
	}
	// Spacing between adjacent elements.
	if d := ants[0].Dist(ants[1]); !mathx.AlmostEqual(d, 0.028, 1e-12) {
		t.Errorf("spacing = %v", d)
	}
	// Array is perpendicular to the normal: all at x = 2.
	for _, a := range ants {
		if !mathx.AlmostEqual(a.X, 2, 1e-12) {
			t.Errorf("antenna %v not on broadside line", a)
		}
	}
}

func TestLinearArraySingle(t *testing.T) {
	ants, err := LinearArray(Point{1, 1}, 1, 0.05, Point{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ants[0] != (Point{1, 1}) {
		t.Errorf("single antenna = %v, want center", ants[0])
	}
}

func TestLinearArrayErrors(t *testing.T) {
	if _, err := LinearArray(Point{}, 0, 0.05, Point{1, 0}); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := LinearArray(Point{}, 2, 0.05, Point{0, 0}); err == nil {
		t.Error("zero normal should error")
	}
}

func TestFresnelRadius(t *testing.T) {
	// Mid-point of a 2 m link at λ = 5.63 cm: r = sqrt(λ·1·1/2) ≈ 0.168 m.
	got := FresnelRadius(0.0563, 1, 1)
	if !mathx.AlmostEqual(got, math.Sqrt(0.0563/2), 1e-9) {
		t.Errorf("Fresnel radius = %v", got)
	}
	if FresnelRadius(0.05, 0, 1) != 0 {
		t.Error("degenerate link should return 0")
	}
}

func TestAntennaChordsDiffer(t *testing.T) {
	// The physical core of the paper's feature: different receive antennas
	// see different in-target path lengths D1 ≠ D2 for an off-axis target.
	c := Circle{Center: Point{1.0, 0.01}, Radius: 0.0715}
	tx := Point{0, 0}
	ants, err := LinearArray(Point{2, 0}, 3, 0.028, Point{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	d1 := c.ChordLength(tx, ants[0])
	d2 := c.ChordLength(tx, ants[1])
	d3 := c.ChordLength(tx, ants[2])
	if d1 == 0 || d2 == 0 || d3 == 0 {
		t.Fatalf("all rays should pierce the beaker: %v %v %v", d1, d2, d3)
	}
	if math.Abs(d1-d2) < 1e-6 && math.Abs(d2-d3) < 1e-6 {
		t.Errorf("chords do not differ across antennas: %v %v %v", d1, d2, d3)
	}
}
