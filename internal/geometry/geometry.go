// Package geometry provides the 2-D planar geometry the channel simulator
// needs: ray/circle intersections giving each antenna's in-target path
// length (the D1, D2 of paper Eqs. 14-17), and uniform linear antenna
// arrays.
//
// The scene is modelled in the horizontal plane through the link: the beaker
// is a circle (its vertical extent exceeds the antenna height, so the
// planar cut captures the geometry that matters).
package geometry

import (
	"fmt"
	"math"
)

// Point is a position in the plane, in metres.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by c.
func (p Point) Scale(c float64) Point { return Point{p.X * c, p.Y * c} }

// Dot returns the dot product of p and q as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Circle is a disk in the plane (the beaker cross-section).
type Circle struct {
	Center Point
	Radius float64
}

// ChordLength returns the length of the intersection of segment a→b with
// the circle: the in-target propagation distance of a ray between a
// transmitter at a and a receiver antenna at b. Zero when the segment
// misses the circle.
func (c Circle) ChordLength(a, b Point) float64 {
	d := b.Sub(a)
	segLen := d.Norm()
	if segLen == 0 {
		return 0
	}
	// Parameterise p(t) = a + t·d, t ∈ [0,1]; solve |p(t)-center|² = r².
	f := a.Sub(c.Center)
	A := d.Dot(d)
	B := 2 * f.Dot(d)
	C := f.Dot(f) - c.Radius*c.Radius
	disc := B*B - 4*A*C
	if disc <= 0 {
		return 0
	}
	sq := math.Sqrt(disc)
	t1 := (-B - sq) / (2 * A)
	t2 := (-B + sq) / (2 * A)
	// Clip to the segment.
	if t1 < 0 {
		t1 = 0
	}
	if t2 > 1 {
		t2 = 1
	}
	if t2 <= t1 {
		return 0
	}
	return (t2 - t1) * segLen
}

// Contains reports whether p lies strictly inside the circle.
func (c Circle) Contains(p Point) bool {
	return p.Sub(c.Center).Norm() < c.Radius
}

// LinearArray returns the positions of n antennas spaced `spacing` metres
// apart, centred on `center`, laid out along the direction perpendicular to
// `normal` (unit vector not required; only its direction is used). Returns
// an error for n < 1 or a zero normal.
func LinearArray(center Point, n int, spacing float64, normal Point) ([]Point, error) {
	if n < 1 {
		return nil, fmt.Errorf("geometry: array needs at least one antenna, got %d", n)
	}
	nn := normal.Norm()
	if nn == 0 {
		return nil, fmt.Errorf("geometry: array normal must be nonzero")
	}
	// Perpendicular to the normal: the array broadside faces the link.
	perp := Point{-normal.Y / nn, normal.X / nn}
	out := make([]Point, n)
	for i := range out {
		offset := (float64(i) - float64(n-1)/2) * spacing
		out[i] = center.Add(perp.Scale(offset))
	}
	return out, nil
}

// FresnelRadius returns the first Fresnel zone radius at a point dividing a
// link of total length d1+d2 (both from the point to each endpoint), at
// wavelength lambda: sqrt(λ·d1·d2/(d1+d2)). This governs how much of the
// link energy a target of a given size can intercept.
func FresnelRadius(lambda, d1, d2 float64) float64 {
	if d1 <= 0 || d2 <= 0 || lambda <= 0 {
		return 0
	}
	return math.Sqrt(lambda * d1 * d2 / (d1 + d2))
}
