package classify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

func gaussianDataset(rng *rand.Rand, perClass int) *Dataset {
	d := &Dataset{}
	centers := map[string][2]float64{"a": {0, 0}, "b": {5, 0}, "c": {0, 5}}
	for _, name := range []string{"a", "b", "c"} {
		c := centers[name]
		for i := 0; i < perClass; i++ {
			d.Append([]float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5}, name)
		}
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{}
	if err := d.Validate(); err == nil {
		t.Error("empty dataset should fail validation")
	}
	d.Append([]float64{1, 2}, "a")
	d.Append([]float64{3, 4}, "b")
	if err := d.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	d.X = append(d.X, []float64{1}) // ragged, no label
	if err := d.Validate(); err == nil {
		t.Error("mismatched lengths should fail")
	}
	d.Labels = append(d.Labels, "c")
	if err := d.Validate(); err == nil {
		t.Error("ragged rows should fail")
	}
	nan := &Dataset{}
	nan.Append([]float64{math.NaN()}, "a")
	if err := nan.Validate(); err == nil {
		t.Error("NaN feature should fail")
	}
}

func TestDatasetAppendCopies(t *testing.T) {
	d := &Dataset{}
	row := []float64{1, 2}
	d.Append(row, "a")
	row[0] = 99
	if d.X[0][0] != 1 {
		t.Error("Append should copy the row")
	}
}

func TestDatasetClasses(t *testing.T) {
	d := &Dataset{}
	d.Append([]float64{1}, "b")
	d.Append([]float64{2}, "a")
	d.Append([]float64{3}, "b")
	got := d.Classes()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Classes = %v", got)
	}
}

func TestScaler(t *testing.T) {
	x := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform(x)
	// First dim standardised: mean 0.
	var mean0 float64
	for _, r := range out {
		mean0 += r[0]
	}
	if !mathx.AlmostEqual(mean0/3, 0, 1e-9) {
		t.Errorf("scaled mean = %v", mean0/3)
	}
	// Constant dim: centred, not exploded.
	for _, r := range out {
		if r[1] != 0 {
			t.Errorf("constant dim scaled to %v, want 0", r[1])
		}
	}
	// Unit variance for the varying dim.
	var v float64
	for _, r := range out {
		v += r[0] * r[0]
	}
	if !mathx.AlmostEqual(v/3, 1, 1e-9) {
		t.Errorf("scaled variance = %v", v/3)
	}
}

func TestScalerErrors(t *testing.T) {
	if _, err := FitScaler(nil); err == nil {
		t.Error("empty fit should error")
	}
	if _, err := FitScaler([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged fit should error")
	}
}

func TestKNNBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := gaussianDataset(rng, 30)
	knn, err := NewKNN(5, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := knn.Predict([]float64{0, 0}); got != "a" {
		t.Errorf("Predict(center a) = %q", got)
	}
	if got := knn.Predict([]float64{5, 0}); got != "b" {
		t.Errorf("Predict(center b) = %q", got)
	}
	if got := knn.Predict([]float64{0, 5}); got != "c" {
		t.Errorf("Predict(center c) = %q", got)
	}
}

func TestKNNValidation(t *testing.T) {
	d := &Dataset{}
	d.Append([]float64{1}, "a")
	if _, err := NewKNN(0, d); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := NewKNN(2, d); err == nil {
		t.Error("k > len should error")
	}
	if _, err := NewKNN(1, &Dataset{}); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestSplitTrainTestStratified(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := gaussianDataset(rng, 20)
	train, test, err := SplitTrainTest(d, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != d.Len() {
		t.Errorf("split sizes %d+%d != %d", train.Len(), test.Len(), d.Len())
	}
	// Each class contributes ~25% to test.
	for _, c := range d.Classes() {
		count := 0
		for _, l := range test.Labels {
			if l == c {
				count++
			}
		}
		if count != 5 {
			t.Errorf("class %s has %d test samples, want 5", c, count)
		}
	}
}

func TestSplitTrainTestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := gaussianDataset(rng, 5)
	if _, _, err := SplitTrainTest(d, 0, rng); err == nil {
		t.Error("testFrac 0 should error")
	}
	if _, _, err := SplitTrainTest(d, 1, rng); err == nil {
		t.Error("testFrac 1 should error")
	}
	if _, _, err := SplitTrainTest(d, 0.5, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestStratifiedKFold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := gaussianDataset(rng, 10) // 30 samples
	folds, err := StratifiedKFold(d, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]int)
	for _, f := range folds {
		train, test := f[0], f[1]
		if len(train)+len(test) != d.Len() {
			t.Errorf("fold sizes %d+%d != %d", len(train), len(test), d.Len())
		}
		// No overlap.
		inTest := make(map[int]bool)
		for _, i := range test {
			inTest[i] = true
			seen[i]++
		}
		for _, i := range train {
			if inTest[i] {
				t.Error("train/test overlap")
			}
		}
	}
	// Every sample appears in exactly one test fold.
	for i := 0; i < d.Len(); i++ {
		if seen[i] != 1 {
			t.Errorf("sample %d in %d test folds", i, seen[i])
		}
	}
}

func TestStratifiedKFoldErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := gaussianDataset(rng, 2)
	if _, err := StratifiedKFold(d, 1, rng); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := StratifiedKFold(d, 100, rng); err == nil {
		t.Error("k > n should error")
	}
	if _, err := StratifiedKFold(d, 3, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm, err := NewConfusionMatrix([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := cm.Add("a", "a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := cm.Add("a", "b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := cm.Add("b", "b"); err != nil {
			t.Fatal(err)
		}
	}
	if acc := cm.Accuracy(); !mathx.AlmostEqual(acc, 0.95, 1e-12) {
		t.Errorf("Accuracy = %v", acc)
	}
	if r, _ := cm.Rate("a", "b"); !mathx.AlmostEqual(r, 0.1, 1e-12) {
		t.Errorf("Rate(a,b) = %v", r)
	}
	if ca, _ := cm.ClassAccuracy("a"); !mathx.AlmostEqual(ca, 0.9, 1e-12) {
		t.Errorf("ClassAccuracy(a) = %v", ca)
	}
	if cm.Count("a", "a") != 9 || cm.Total() != 20 {
		t.Error("counts wrong")
	}
	if err := cm.Add("zz", "a"); err == nil {
		t.Error("unknown class should error")
	}
	if _, err := cm.ClassAccuracy("zz"); err == nil {
		t.Error("unknown class accuracy should error")
	}
	if s := cm.String(); len(s) == 0 {
		t.Error("String should render")
	}
}

func TestConfusionMatrixValidation(t *testing.T) {
	if _, err := NewConfusionMatrix(nil); err == nil {
		t.Error("no classes should error")
	}
	if _, err := NewConfusionMatrix([]string{"a", "a"}); err == nil {
		t.Error("duplicate classes should error")
	}
}

func TestConfusionMatrixEmptyAccuracy(t *testing.T) {
	cm, _ := NewConfusionMatrix([]string{"a"})
	if cm.Accuracy() != 0 {
		t.Error("empty matrix accuracy should be 0")
	}
	if ca, err := cm.ClassAccuracy("a"); err != nil || ca != 0 {
		t.Error("empty class accuracy should be 0")
	}
	if r, err := cm.Rate("a", "a"); err != nil || r != 0 {
		t.Error("empty rate should be 0")
	}
}

func TestEvaluateWithKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := gaussianDataset(rng, 30)
	train, test, err := SplitTrainTest(d, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	knn, err := NewKNN(3, train)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := Evaluate(knn, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := cm.Accuracy(); acc < 0.9 {
		t.Errorf("kNN accuracy on separable Gaussians = %v, want ≥ 0.9", acc)
	}
}

// stubClassifier predicts a class that is not in the test set.
type stubClassifier struct{}

func (stubClassifier) Predict([]float64) string { return "mystery" }

func TestEvaluateUnseenPrediction(t *testing.T) {
	d := &Dataset{}
	d.Append([]float64{1}, "a")
	d.Append([]float64{2}, "b")
	cm, err := Evaluate(stubClassifier{}, d)
	if err != nil {
		t.Fatalf("unseen predicted class should be tolerated: %v", err)
	}
	if cm.Accuracy() != 0 {
		t.Error("all predictions wrong, accuracy should be 0")
	}
	if cm.Count("a", "mystery") != 1 {
		t.Error("prediction not recorded under new class")
	}
}
