package classify

import (
	"fmt"
	"math"
	"sort"
)

// KNNRegressor predicts a continuous value as the inverse-distance-weighted
// mean of the k nearest training samples — used by the concentration
// estimation extension (continuous saltwater strength rather than the
// paper's three discrete classes).
type KNNRegressor struct {
	k int
	x [][]float64
	y []float64
}

// NewKNNRegressor builds a regressor over (x, y) pairs. k must be within
// [1, len(x)], x must be rectangular and finite, and y must match x.
func NewKNNRegressor(k int, x [][]float64, y []float64) (*KNNRegressor, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("classify: regressor needs matching non-empty x (%d) and y (%d)", len(x), len(y))
	}
	if k < 1 || k > len(x) {
		return nil, fmt.Errorf("classify: k=%d outside [1,%d]", k, len(x))
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("classify: ragged regressor sample %d", i)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("classify: non-finite feature in regressor sample %d", i)
			}
		}
		if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return nil, fmt.Errorf("classify: non-finite target in sample %d", i)
		}
	}
	xs := make([][]float64, len(x))
	for i := range x {
		xs[i] = append([]float64(nil), x[i]...)
	}
	return &KNNRegressor{k: k, x: xs, y: append([]float64(nil), y...)}, nil
}

// Predict returns the inverse-distance-weighted mean target of the k
// nearest neighbours of sample.
func (r *KNNRegressor) Predict(sample []float64) float64 {
	type neighbor struct {
		dist float64
		y    float64
	}
	ns := make([]neighbor, len(r.x))
	for i, row := range r.x {
		var d float64
		n := len(row)
		if len(sample) < n {
			n = len(sample)
		}
		for j := 0; j < n; j++ {
			diff := row[j] - sample[j]
			d += diff * diff
		}
		ns[i] = neighbor{dist: d, y: r.y[i]}
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].dist < ns[b].dist })
	var wsum, ysum float64
	for _, n := range ns[:r.k] {
		w := 1 / (n.dist + 1e-12)
		wsum += w
		ysum += w * n.y
	}
	return ysum / wsum
}
