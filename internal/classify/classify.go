// Package classify provides the evaluation machinery around the SVM:
// datasets, feature scaling, a kNN baseline, train/test splitting,
// stratified k-fold cross-validation, accuracy and confusion matrices.
package classify

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dataset pairs feature vectors with string class labels.
type Dataset struct {
	X      [][]float64
	Labels []string
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks the dataset is rectangular and consistent.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Labels) {
		return fmt.Errorf("classify: %d samples but %d labels", len(d.X), len(d.Labels))
	}
	if len(d.X) == 0 {
		return fmt.Errorf("classify: empty dataset")
	}
	dim := len(d.X[0])
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("classify: ragged sample %d: %d dims, want %d", i, len(row), dim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("classify: non-finite feature at sample %d dim %d: %v", i, j, v)
			}
		}
	}
	return nil
}

// Append adds one sample.
func (d *Dataset) Append(x []float64, label string) {
	d.X = append(d.X, append([]float64(nil), x...))
	d.Labels = append(d.Labels, label)
}

// Classes returns the sorted distinct labels.
func (d *Dataset) Classes() []string {
	set := make(map[string]struct{})
	for _, l := range d.Labels {
		set[l] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Subset returns a dataset restricted to the given sample indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{}
	for _, i := range idx {
		out.X = append(out.X, d.X[i])
		out.Labels = append(out.Labels, d.Labels[i])
	}
	return out
}

// Scaler standardises features to zero mean and unit variance, fitted on
// training data and applied to both splits (never fit on test data).
type Scaler struct {
	mean, std []float64
}

// FitScaler learns per-dimension mean and standard deviation. Dimensions
// with zero variance get std 1, leaving them centred but unscaled.
func FitScaler(x [][]float64) (*Scaler, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("classify: cannot fit scaler on empty data")
	}
	dim := len(x[0])
	s := &Scaler{mean: make([]float64, dim), std: make([]float64, dim)}
	for _, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("classify: ragged data in scaler fit")
		}
		for j, v := range row {
			s.mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return s, nil
}

// NewScalerFromParams rebuilds a scaler from stored parameters (model
// deserialisation). mean and std must have equal length and positive stds.
func NewScalerFromParams(mean, std []float64) (*Scaler, error) {
	if len(mean) != len(std) || len(mean) == 0 {
		return nil, fmt.Errorf("classify: scaler params need matching non-empty mean (%d) and std (%d)", len(mean), len(std))
	}
	for i, s := range std {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("classify: scaler std[%d] = %v must be positive and finite", i, s)
		}
	}
	return &Scaler{
		mean: append([]float64(nil), mean...),
		std:  append([]float64(nil), std...),
	}, nil
}

// Params returns copies of the fitted mean and std vectors (for model
// serialisation).
func (s *Scaler) Params() (mean, std []float64) {
	return append([]float64(nil), s.mean...), append([]float64(nil), s.std...)
}

// Transform returns standardised copies of the rows.
func (s *Scaler) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.TransformOne(row)
	}
	return out
}

// TransformOne standardises a single sample.
func (s *Scaler) TransformOne(row []float64) []float64 {
	return s.TransformOneInto(nil, row)
}

// TransformOneInto standardises a single sample into dst, grown as needed
// and returned re-sliced to len(row), so per-prediction callers reuse the
// scaled-vector buffer. dst may be nil and must not alias row.
func (s *Scaler) TransformOneInto(dst, row []float64) []float64 {
	if cap(dst) < len(row) {
		dst = make([]float64, len(row))
	}
	out := dst[:len(row)]
	for j, v := range row {
		if j < len(s.mean) {
			out[j] = (v - s.mean[j]) / s.std[j]
		} else {
			out[j] = v
		}
	}
	return out
}

// Classifier is anything that maps a feature vector to a class label. Both
// the SVM wrapper and kNN satisfy it.
type Classifier interface {
	Predict(x []float64) string
}

// KNN is a k-nearest-neighbour classifier — the simple baseline the SVM is
// compared against in the classifier ablation.
type KNN struct {
	k    int
	data *Dataset
}

// NewKNN builds a kNN model over the dataset (which it references, not
// copies). k must be ≥ 1 and ≤ the dataset size.
func NewKNN(k int, data *Dataset) (*KNN, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	if k < 1 || k > data.Len() {
		return nil, fmt.Errorf("classify: k=%d outside [1,%d]", k, data.Len())
	}
	return &KNN{k: k, data: data}, nil
}

// K returns the neighbour count.
func (m *KNN) K() int { return m.k }

// Data returns the training dataset the model references.
func (m *KNN) Data() *Dataset { return m.data }

// Predict implements Classifier by majority vote among the k nearest
// training samples (Euclidean), ties broken by summed inverse distance.
func (m *KNN) Predict(x []float64) string {
	type neighbor struct {
		dist  float64
		label string
	}
	ns := make([]neighbor, m.data.Len())
	for i, row := range m.data.X {
		var d float64
		n := len(row)
		if len(x) < n {
			n = len(x)
		}
		for j := 0; j < n; j++ {
			diff := row[j] - x[j]
			d += diff * diff
		}
		ns[i] = neighbor{dist: d, label: m.data.Labels[i]}
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].dist < ns[b].dist })
	votes := make(map[string]int)
	weight := make(map[string]float64)
	for _, n := range ns[:m.k] {
		votes[n.label]++
		weight[n.label] += 1 / (n.dist + 1e-12)
	}
	best := ""
	for label := range votes {
		if best == "" {
			best = label
			continue
		}
		if votes[label] > votes[best] ||
			(votes[label] == votes[best] && weight[label] > weight[best]) ||
			(votes[label] == votes[best] && weight[label] == weight[best] && label < best) {
			best = label
		}
	}
	return best
}

// SplitTrainTest shuffles indices with rng and splits them so that testFrac
// of each class lands in the test set (stratified). testFrac must be in
// (0, 1).
func SplitTrainTest(d *Dataset, testFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("classify: testFrac %v outside (0,1)", testFrac)
	}
	if rng == nil {
		return nil, nil, fmt.Errorf("classify: nil random source")
	}
	byClass := make(map[string][]int)
	for i, lab := range d.Labels {
		byClass[lab] = append(byClass[lab], i)
	}
	var trainIdx, testIdx []int
	classes := d.Classes()
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		nTest := int(math.Round(testFrac * float64(len(idx))))
		if nTest == 0 && len(idx) > 1 {
			nTest = 1
		}
		if nTest >= len(idx) {
			nTest = len(idx) - 1
		}
		testIdx = append(testIdx, idx[:nTest]...)
		trainIdx = append(trainIdx, idx[nTest:]...)
	}
	sort.Ints(trainIdx)
	sort.Ints(testIdx)
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// StratifiedKFold returns k (trainIdx, testIdx) pairs with class balance
// preserved across folds.
func StratifiedKFold(d *Dataset, k int, rng *rand.Rand) (folds [][2][]int, err error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k < 2 || k > d.Len() {
		return nil, fmt.Errorf("classify: k=%d outside [2,%d]", k, d.Len())
	}
	if rng == nil {
		return nil, fmt.Errorf("classify: nil random source")
	}
	byClass := make(map[string][]int)
	for i, lab := range d.Labels {
		byClass[lab] = append(byClass[lab], i)
	}
	testSets := make([][]int, k)
	for _, c := range d.Classes() {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for pos, sample := range idx {
			f := pos % k
			testSets[f] = append(testSets[f], sample)
		}
	}
	for f := 0; f < k; f++ {
		inTest := make(map[int]bool, len(testSets[f]))
		for _, i := range testSets[f] {
			inTest[i] = true
		}
		var train []int
		for i := 0; i < d.Len(); i++ {
			if !inTest[i] {
				train = append(train, i)
			}
		}
		test := append([]int(nil), testSets[f]...)
		sort.Ints(test)
		folds = append(folds, [2][]int{train, test})
	}
	return folds, nil
}
