package classify

import (
	"math"
	"math/rand"
	"testing"
)

func TestKNNRegressorValidation(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if _, err := NewKNNRegressor(0, x, y); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := NewKNNRegressor(3, x, y); err == nil {
		t.Error("k>n should error")
	}
	if _, err := NewKNNRegressor(1, nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := NewKNNRegressor(1, x, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewKNNRegressor(1, [][]float64{{1}, {2, 3}}, y); err == nil {
		t.Error("ragged input should error")
	}
	if _, err := NewKNNRegressor(1, [][]float64{{math.NaN()}, {1}}, y); err == nil {
		t.Error("NaN feature should error")
	}
	if _, err := NewKNNRegressor(1, x, []float64{1, math.Inf(1)}); err == nil {
		t.Error("Inf target should error")
	}
}

func TestKNNRegressorExactNeighbor(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{10, 20, 30, 40}
	r, err := NewKNNRegressor(1, x, y)
	if err != nil {
		t.Fatal(err)
	}
	// k=1 at a training point returns its target.
	if got := r.Predict([]float64{2}); math.Abs(got-30) > 1e-9 {
		t.Errorf("Predict(2) = %v, want 30", got)
	}
}

func TestKNNRegressorInterpolates(t *testing.T) {
	// Dense linear relationship: predictions between points land between
	// the neighbouring targets.
	var x [][]float64
	var y []float64
	for i := 0; i <= 20; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, 5*float64(i))
	}
	r, err := NewKNNRegressor(2, x, y)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Predict([]float64{7.5})
	if got < 35 || got > 40 {
		t.Errorf("Predict(7.5) = %v, want within [35, 40]", got)
	}
}

func TestKNNRegressorCopiesInput(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	r, err := NewKNNRegressor(1, x, y)
	if err != nil {
		t.Fatal(err)
	}
	x[0][0] = 99
	y[0] = 99
	if got := r.Predict([]float64{1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("regressor aliased its inputs: Predict(1) = %v", got)
	}
}

func TestKNNRegressorNoisyLinearFit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		v := rng.Float64() * 10
		x = append(x, []float64{v})
		y = append(y, 3*v+rng.NormFloat64()*0.2)
	}
	r, err := NewKNNRegressor(7, x, y)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	n := 0
	for v := 1.0; v <= 9; v += 0.5 {
		mae += math.Abs(r.Predict([]float64{v}) - 3*v)
		n++
	}
	mae /= float64(n)
	if mae > 0.3 {
		t.Errorf("MAE = %v, want < 0.3", mae)
	}
}
