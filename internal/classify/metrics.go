package classify

import (
	"fmt"
	"sort"
	"strings"
)

// ConfusionMatrix counts predictions per (true class, predicted class) —
// the structure of the paper's Figs. 15 and 16.
type ConfusionMatrix struct {
	classes []string
	index   map[string]int
	counts  [][]int
	total   int
}

// NewConfusionMatrix prepares a matrix over the given classes (order is
// preserved for display). Predictions involving unknown classes are
// rejected by Add.
func NewConfusionMatrix(classes []string) (*ConfusionMatrix, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("classify: confusion matrix needs classes")
	}
	cm := &ConfusionMatrix{
		classes: append([]string(nil), classes...),
		index:   make(map[string]int, len(classes)),
	}
	for i, c := range classes {
		if _, dup := cm.index[c]; dup {
			return nil, fmt.Errorf("classify: duplicate class %q", c)
		}
		cm.index[c] = i
	}
	cm.counts = make([][]int, len(classes))
	for i := range cm.counts {
		cm.counts[i] = make([]int, len(classes))
	}
	return cm, nil
}

// Add records one (truth, predicted) observation.
func (cm *ConfusionMatrix) Add(truth, predicted string) error {
	ti, ok := cm.index[truth]
	if !ok {
		return fmt.Errorf("classify: unknown true class %q", truth)
	}
	pi, ok := cm.index[predicted]
	if !ok {
		return fmt.Errorf("classify: unknown predicted class %q", predicted)
	}
	cm.counts[ti][pi]++
	cm.total++
	return nil
}

// Accuracy returns the overall fraction of correct predictions (NaN-free:
// zero observations give 0).
func (cm *ConfusionMatrix) Accuracy() float64 {
	if cm.total == 0 {
		return 0
	}
	correct := 0
	for i := range cm.classes {
		correct += cm.counts[i][i]
	}
	return float64(correct) / float64(cm.total)
}

// ClassAccuracy returns the per-class recall (diagonal / row sum), the
// quantity on the diagonal of the paper's confusion figures.
func (cm *ConfusionMatrix) ClassAccuracy(class string) (float64, error) {
	i, ok := cm.index[class]
	if !ok {
		return 0, fmt.Errorf("classify: unknown class %q", class)
	}
	row := 0
	for _, c := range cm.counts[i] {
		row += c
	}
	if row == 0 {
		return 0, nil
	}
	return float64(cm.counts[i][i]) / float64(row), nil
}

// Rate returns the normalised entry P(predicted | truth).
func (cm *ConfusionMatrix) Rate(truth, predicted string) (float64, error) {
	ti, ok := cm.index[truth]
	if !ok {
		return 0, fmt.Errorf("classify: unknown true class %q", truth)
	}
	pi, ok := cm.index[predicted]
	if !ok {
		return 0, fmt.Errorf("classify: unknown predicted class %q", predicted)
	}
	row := 0
	for _, c := range cm.counts[ti] {
		row += c
	}
	if row == 0 {
		return 0, nil
	}
	return float64(cm.counts[ti][pi]) / float64(row), nil
}

// Classes returns the class order of the matrix.
func (cm *ConfusionMatrix) Classes() []string {
	return append([]string(nil), cm.classes...)
}

// Count returns the raw count for (truth, predicted), 0 for unknown names.
func (cm *ConfusionMatrix) Count(truth, predicted string) int {
	ti, ok := cm.index[truth]
	if !ok {
		return 0
	}
	pi, ok := cm.index[predicted]
	if !ok {
		return 0
	}
	return cm.counts[ti][pi]
}

// Total returns the number of observations recorded.
func (cm *ConfusionMatrix) Total() int { return cm.total }

// String renders the row-normalised matrix like the paper's figures.
func (cm *ConfusionMatrix) String() string {
	var b strings.Builder
	width := 6
	for _, c := range cm.classes {
		if len(c) > width {
			width = len(c)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, c := range cm.classes {
		fmt.Fprintf(&b, "%*s", width+2, c)
	}
	b.WriteByte('\n')
	for _, truth := range cm.classes {
		fmt.Fprintf(&b, "%-*s", width+2, truth)
		for _, pred := range cm.classes {
			r, err := cm.Rate(truth, pred)
			if err != nil {
				// Classes come from the matrix itself; this cannot happen.
				r = 0
			}
			if r == 0 {
				fmt.Fprintf(&b, "%*s", width+2, ".")
			} else {
				fmt.Fprintf(&b, "%*.2f", width+2, r)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "overall accuracy: %.1f%% (%d samples)\n", 100*cm.Accuracy(), cm.total)
	return b.String()
}

// Evaluate runs the classifier over the dataset and builds a confusion
// matrix over the union of dataset classes (sorted).
func Evaluate(c Classifier, test *Dataset) (*ConfusionMatrix, error) {
	if err := test.Validate(); err != nil {
		return nil, err
	}
	classes := test.Classes()
	// Include any predicted-but-unseen classes lazily: collect predictions
	// first.
	preds := make([]string, test.Len())
	seen := make(map[string]bool)
	for _, c := range classes {
		seen[c] = true
	}
	extra := []string{}
	for i, x := range test.X {
		preds[i] = c.Predict(x)
		if !seen[preds[i]] {
			seen[preds[i]] = true
			extra = append(extra, preds[i])
		}
	}
	sort.Strings(extra)
	cm, err := NewConfusionMatrix(append(classes, extra...))
	if err != nil {
		return nil, err
	}
	for i := range preds {
		if err := cm.Add(test.Labels[i], preds[i]); err != nil {
			return nil, err
		}
	}
	return cm, nil
}
