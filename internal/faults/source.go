package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/csi"
)

// PacketSource is the packet producer interface the wrapper sits over —
// structurally identical to transport.PacketSource, declared here so the
// fault layer has no dependency on the transport package.
type PacketSource interface {
	Next() (csi.Packet, error)
}

// Source wraps a PacketSource and injects packet-level faults: loss,
// duplication, one-slot reordering, a dead antenna and zeroed subcarriers.
// Payload faults (dead antenna, zeroed subcarrier) operate on a clone of
// the packet's CSI matrix so the underlying source's data is never
// mutated.
type Source struct {
	src     PacketSource
	rng     *rand.Rand
	profile Profile
	index   int64 // packets pulled from src
	queue   []csi.Packet
	events  []Event
}

// WrapSource wraps src with the profile's packet faults, drawing the
// schedule from seed. Same (profile, seed) ⇒ same schedule.
func WrapSource(src PacketSource, p Profile, seed int64) (*Source, error) {
	if src == nil {
		return nil, fmt.Errorf("faults: nil source")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Source{src: src, rng: newRNG(seed), profile: p.sanitized()}, nil
}

// Next implements the PacketSource contract, delivering the faulted stream.
func (fs *Source) Next() (csi.Packet, error) {
	for {
		if len(fs.queue) > 0 {
			pkt := fs.queue[0]
			fs.queue = fs.queue[1:]
			return pkt, nil
		}
		pkt, err := fs.src.Next()
		if err != nil {
			return csi.Packet{}, err
		}
		idx := fs.index
		fs.index++
		p := fs.profile

		if p.DropProb > 0 && fs.rng.Float64() < p.DropProb {
			fs.events = append(fs.events, Event{Kind: EventDrop, Index: idx, Arg: int64(pkt.Seq)})
			continue
		}
		pkt = fs.corruptPayload(pkt, idx)
		if p.DupProb > 0 && fs.rng.Float64() < p.DupProb {
			fs.events = append(fs.events, Event{Kind: EventDup, Index: idx, Arg: int64(pkt.Seq)})
			fs.queue = append(fs.queue, pkt)
		}
		if p.ReorderProb > 0 && fs.rng.Float64() < p.ReorderProb {
			// Hold this packet back one slot: deliver the successor first.
			next, err := fs.src.Next()
			if err != nil {
				// Nothing to swap with: deliver in order; the terminal
				// condition surfaces on the following Next call.
				return pkt, nil
			}
			nidx := fs.index
			fs.index++
			next = fs.corruptPayload(next, nidx)
			fs.events = append(fs.events, Event{Kind: EventReorder, Index: idx, Arg: int64(pkt.Seq)})
			fs.queue = append([]csi.Packet{pkt}, fs.queue...)
			return next, nil
		}
		return pkt, nil
	}
}

// corruptPayload applies the payload faults (dead antenna, zeroed
// subcarrier) to a cloned matrix, journaling each.
func (fs *Source) corruptPayload(pkt csi.Packet, idx int64) csi.Packet {
	p := fs.profile
	var deadAnts []int
	if pkt.CSI != nil {
		for _, ant := range p.DeadAntennas {
			if ant >= 0 && ant < pkt.CSI.NumAntennas() {
				deadAnts = append(deadAnts, ant)
			}
		}
	}
	zeroSub := p.ZeroSubcarrierProb > 0 && fs.rng.Float64() < p.ZeroSubcarrierProb
	var sub int
	if zeroSub {
		sub = fs.rng.Intn(csi.NumSubcarriers)
	}
	if pkt.CSI == nil || (len(deadAnts) == 0 && !zeroSub) {
		return pkt
	}
	m := pkt.CSI.Clone()
	for _, ant := range deadAnts {
		for s := range m.Values[ant] {
			m.Values[ant][s] = 0
		}
		fs.events = append(fs.events, Event{Kind: EventDeadAnt, Index: idx, Arg: int64(ant)})
	}
	if zeroSub {
		for ant := range m.Values {
			m.Values[ant][sub] = 0
		}
		fs.events = append(fs.events, Event{Kind: EventZeroSub, Index: idx, Arg: int64(sub)})
	}
	pkt.CSI = m
	return pkt
}

// Events returns a copy of the journal of injected faults so far.
func (fs *Source) Events() []Event {
	return append([]Event(nil), fs.events...)
}
