// Package faults is a deterministic fault-injection layer for the CSI
// collection path. It wraps the two surfaces real collection failures enter
// through — the byte stream (a net.Conn) and the packet source (the NIC) —
// and injects the faults commodity Wi-Fi CSI measurement campaigns report
// as routine: packet loss, duplication, reordering, byte corruption, stream
// truncation, receiver stalls, mid-stream disconnects, dead antennas and
// zeroed subcarriers.
//
// Every wrapper draws its fault schedule from a seeded *rand.Rand: the same
// (profile, seed) pair produces a bit-identical schedule, so chaos tests
// are reproducible and failures found under injection can be replayed
// exactly. Each wrapper also journals every decision it makes (an []Event),
// which the determinism tests compare run against run.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Profile parameterises a fault schedule. The zero value injects nothing.
// Probabilities are per-opportunity (per packet for source faults, per
// write for stream faults) in [0, 1].
type Profile struct {
	// Name labels the profile in logs and flag values.
	Name string

	// --- Stream (net.Conn) faults, applied per Write ---

	// CorruptProb is the chance a written buffer has one byte flipped.
	CorruptProb float64
	// TruncateProb is the chance a write silently drops its tail (the bytes
	// vanish but the writer is told they were sent) — the framing-destroying
	// fault a flaky link produces.
	TruncateProb float64
	// StallProb is the chance a write stalls for StallDuration first — a
	// latency spike / receiver stall.
	StallProb float64
	// StallDuration is how long an injected stall lasts. Zero selects 20 ms.
	StallDuration time.Duration
	// DisconnectAfterBytes, when positive, hard-closes the connection once
	// that many bytes have been written — one forced mid-stream disconnect.
	DisconnectAfterBytes int64
	// DisconnectProb is a per-write chance of a spontaneous disconnect.
	DisconnectProb float64

	// --- Packet (PacketSource) faults, applied per packet ---

	// DropProb is the packet loss rate.
	DropProb float64
	// DupProb is the chance a packet is delivered twice.
	DupProb float64
	// ReorderProb is the chance a packet is held back and delivered after
	// its successor (a one-slot swap).
	ReorderProb float64
	// DeadAntennas lists antennas whose rows are zeroed in every packet —
	// the dropped-RF-chain fault. Nil (the zero value) kills none.
	DeadAntennas []int
	// ZeroSubcarrierProb is the per-packet chance that one random
	// subcarrier column is zeroed across all antennas.
	ZeroSubcarrierProb float64
}

// sanitized returns the profile with defaults filled in.
func (p Profile) sanitized() Profile {
	if p.StallDuration <= 0 {
		p.StallDuration = 20 * time.Millisecond
	}
	return p
}

// Validate rejects out-of-range probabilities.
func (p Profile) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"CorruptProb", p.CorruptProb},
		{"TruncateProb", p.TruncateProb},
		{"StallProb", p.StallProb},
		{"DisconnectProb", p.DisconnectProb},
		{"DropProb", p.DropProb},
		{"DupProb", p.DupProb},
		{"ReorderProb", p.ReorderProb},
		{"ZeroSubcarrierProb", p.ZeroSubcarrierProb},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("faults: %s = %v outside [0,1]", f.name, f.v)
		}
	}
	return nil
}

// Clean is the no-fault profile.
func Clean() Profile { return Profile{Name: "clean"} }

// Lossy models a congested but serviceable link: 10% packet loss, light
// duplication and reordering, occasional corrupt or stalled writes.
func Lossy() Profile {
	return Profile{
		Name:          "lossy",
		DropProb:      0.10,
		DupProb:       0.02,
		ReorderProb:   0.02,
		CorruptProb:   0.01,
		StallProb:     0.01,
		StallDuration: 5 * time.Millisecond,
	}
}

// Flaky models a link that dies mid-stream: moderate loss plus a forced
// disconnect partway through a typical capture, and occasional truncation.
func Flaky() Profile {
	return Profile{
		Name:                 "flaky",
		DropProb:             0.05,
		TruncateProb:         0.01,
		DisconnectAfterBytes: 64 << 10,
	}
}

// DeadAntennaProfile models a receiver with one dead RF chain (antenna 2)
// and mild loss — the degraded-mode pipeline's target case.
func DeadAntennaProfile() Profile {
	return Profile{
		Name:         "dead-antenna",
		DropProb:     0.05,
		DeadAntennas: []int{2},
	}
}

// Chaos is the aggressive everything-at-once profile the chaos integration
// test runs: ≥10% loss, duplication, reordering, a dead antenna, zeroed
// subcarriers, corrupt writes and a forced mid-stream disconnect.
func Chaos() Profile {
	return Profile{
		Name:                 "chaos",
		DropProb:             0.12,
		DupProb:              0.05,
		ReorderProb:          0.05,
		DeadAntennas:         []int{2},
		ZeroSubcarrierProb:   0.05,
		CorruptProb:          0.02,
		DisconnectAfterBytes: 48 << 10,
	}
}

// profiles indexes the named profiles for flag parsing.
func profiles() map[string]Profile {
	out := map[string]Profile{}
	for _, p := range []Profile{Clean(), Lossy(), Flaky(), DeadAntennaProfile(), Chaos()} {
		out[p.Name] = p
	}
	return out
}

// Names lists the built-in profile names, sorted.
func Names() []string {
	m := profiles()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName fetches a built-in profile ("clean", "lossy", "flaky",
// "dead-antenna", "chaos").
func ByName(name string) (Profile, error) {
	if p, ok := profiles()[name]; ok {
		return p, nil
	}
	return Profile{}, fmt.Errorf("faults: unknown profile %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// EventKind classifies one injected fault.
type EventKind string

// The fault kinds a wrapper journals.
const (
	EventDrop       EventKind = "drop"
	EventDup        EventKind = "dup"
	EventReorder    EventKind = "reorder"
	EventDeadAnt    EventKind = "dead-antenna"
	EventZeroSub    EventKind = "zero-subcarrier"
	EventCorrupt    EventKind = "corrupt"
	EventTruncate   EventKind = "truncate"
	EventStall      EventKind = "stall"
	EventDisconnect EventKind = "disconnect"
)

// Event is one journaled fault decision. Index is the packet index (source
// faults) or the byte offset of the write (stream faults); Arg carries the
// fault-specific detail (flipped byte offset, dropped tail length, zeroed
// subcarrier, …).
type Event struct {
	Kind  EventKind
	Index int64
	Arg   int64
}

// String renders the event compactly, e.g. "drop@17" or "corrupt@1024(+3)".
func (e Event) String() string {
	return fmt.Sprintf("%s@%d(%d)", e.Kind, e.Index, e.Arg)
}

// newRNG builds the deterministic generator every wrapper draws from.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
