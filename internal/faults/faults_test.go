package faults

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/csi"
)

// syntheticSource produces n distinct packets with seq 0..n-1 and a
// recognisable CSI fill.
type syntheticSource struct {
	n, next int
	numAnt  int
}

func (s *syntheticSource) Next() (csi.Packet, error) {
	if s.next >= s.n {
		return csi.Packet{}, io.EOF
	}
	m, err := csi.NewMatrix(s.numAnt)
	if err != nil {
		return csi.Packet{}, err
	}
	for ant := range m.Values {
		for sub := range m.Values[ant] {
			m.Values[ant][sub] = complex(float64(s.next+1), float64(ant*100+sub))
		}
	}
	pkt := csi.Packet{Seq: uint32(s.next), Carrier: 5.32e9, CSI: m,
		Timestamp: time.Unix(0, int64(s.next))}
	s.next++
	return pkt, nil
}

// drain pulls the whole faulted stream, returning delivered seqs.
func drain(t *testing.T, src *Source) []uint32 {
	t.Helper()
	var seqs []uint32
	for {
		pkt, err := src.Next()
		if err == io.EOF {
			return seqs
		}
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, pkt.Seq)
	}
}

func eventStrings(evs []Event) string {
	var b bytes.Buffer
	for _, e := range evs {
		fmt.Fprintln(&b, e.String())
	}
	return b.String()
}

func TestProfileValidate(t *testing.T) {
	if err := (Profile{DropProb: 1.5}).Validate(); err == nil {
		t.Error("out-of-range probability should error")
	}
	if err := Chaos().Validate(); err != nil {
		t.Errorf("chaos profile invalid: %v", err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Errorf("profile %q has name %q", name, p.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestSourceScheduleDeterministic(t *testing.T) {
	// The acceptance property: same seed + profile ⇒ bit-identical fault
	// schedule (same events, same delivered packet sequence).
	profile := Chaos()
	profile.DisconnectAfterBytes = 0 // source-side faults only
	run := func(seed int64) ([]uint32, string) {
		src, err := WrapSource(&syntheticSource{n: 200, numAnt: 3}, profile, seed)
		if err != nil {
			t.Fatal(err)
		}
		seqs := drain(t, src)
		return seqs, eventStrings(src.Events())
	}
	s1, e1 := run(42)
	s2, e2 := run(42)
	if len(s1) == 200 {
		t.Fatal("chaos profile injected no faults")
	}
	if e1 == "" {
		t.Fatal("no events journaled")
	}
	if e1 != e2 {
		t.Errorf("event schedules differ for same seed:\n%s\nvs\n%s", e1, e2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("delivered counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("delivered seq %d differs: %d vs %d", i, s1[i], s2[i])
		}
	}
	s3, e3 := run(43)
	if e1 == e3 && len(s1) == len(s3) {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

func TestSourceDropRate(t *testing.T) {
	src, err := WrapSource(&syntheticSource{n: 1000, numAnt: 2}, Profile{DropProb: 0.3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	seqs := drain(t, src)
	if got := len(seqs); got < 600 || got > 800 {
		t.Errorf("delivered %d of 1000 at 30%% loss", got)
	}
}

func TestSourceDuplication(t *testing.T) {
	src, err := WrapSource(&syntheticSource{n: 500, numAnt: 2}, Profile{DupProb: 0.2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	seqs := drain(t, src)
	seen := map[uint32]int{}
	for _, s := range seqs {
		seen[s]++
	}
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups++
		}
	}
	if dups < 50 {
		t.Errorf("only %d duplicated packets at 20%% dup", dups)
	}
	if len(seen) != 500 {
		t.Errorf("duplication lost packets: %d unique", len(seen))
	}
}

func TestSourceReorderKeepsAllPackets(t *testing.T) {
	src, err := WrapSource(&syntheticSource{n: 300, numAnt: 2}, Profile{ReorderProb: 0.2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	seqs := drain(t, src)
	if len(seqs) != 300 {
		t.Fatalf("reordering changed packet count: %d", len(seqs))
	}
	swaps := 0
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			swaps++
		}
	}
	if swaps == 0 {
		t.Error("no reordering observed at 20% reorder")
	}
}

func TestSourceDeadAntennaZeroesRowWithoutMutatingSource(t *testing.T) {
	inner := &syntheticSource{n: 5, numAnt: 3}
	src, err := WrapSource(inner, Profile{DeadAntennas: []int{1}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	for sub := range pkt.CSI.Values[1] {
		if pkt.CSI.Values[1][sub] != 0 {
			t.Fatalf("antenna 1 not zeroed at subcarrier %d", sub)
		}
	}
	for _, ant := range []int{0, 2} {
		if pkt.CSI.Values[ant][0] == 0 {
			t.Errorf("live antenna %d was zeroed", ant)
		}
	}
	// The wrapper must clone: a fresh read of the same underlying data (a
	// second synthetic source at the same index) is unaffected.
	fresh := &syntheticSource{n: 5, numAnt: 3}
	ref, _ := fresh.Next()
	if ref.CSI.Values[1][0] == 0 {
		t.Error("synthetic source itself produced zeros — test broken")
	}
}

func TestSourceZeroSubcarrier(t *testing.T) {
	src, err := WrapSource(&syntheticSource{n: 400, numAnt: 2}, Profile{ZeroSubcarrierProb: 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	zeroed := 0
	for {
		pkt, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for sub := 0; sub < csi.NumSubcarriers; sub++ {
			if pkt.CSI.Values[0][sub] == 0 && pkt.CSI.Values[1][sub] == 0 {
				zeroed++
				break
			}
		}
	}
	if zeroed < 100 {
		t.Errorf("only %d packets had a zeroed subcarrier at 50%%", zeroed)
	}
}

func TestConnCorruptionDeterministic(t *testing.T) {
	profile := Profile{CorruptProb: 0.5, TruncateProb: 0.2}
	run := func() (string, []byte) {
		a, b := net.Pipe()
		defer func() { _ = a.Close(); _ = b.Close() }()
		fc, err := WrapConn(a, profile, 11)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = io.Copy(&got, b)
		}()
		for i := 0; i < 50; i++ {
			buf := bytes.Repeat([]byte{byte(i)}, 64)
			if n, err := fc.Write(buf); err != nil || n != 64 {
				t.Errorf("write %d: n=%d err=%v", i, n, err)
			}
		}
		_ = a.Close()
		<-done
		return eventStrings(fc.Events()), got.Bytes()
	}
	e1, b1 := run()
	e2, b2 := run()
	if e1 == "" {
		t.Fatal("no conn faults journaled at 50% corruption")
	}
	if e1 != e2 || !bytes.Equal(b1, b2) {
		t.Error("conn fault schedule not deterministic")
	}
	if len(b1) == 50*64 && !bytes.Contains([]byte(e1), []byte("truncate")) {
		t.Error("expected truncation to shorten the stream")
	}
}

func TestConnDisconnectAfterBytes(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = b.Close() }()
	fc, err := WrapConn(a, Profile{DisconnectAfterBytes: 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = io.Copy(io.Discard, b) }()
	var wrote int
	var werr error
	for i := 0; i < 10; i++ {
		var n int
		n, werr = fc.Write(make([]byte, 32))
		wrote += n
		if werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("no disconnect after byte budget")
	}
	if wrote > 100 {
		t.Errorf("wrote %d bytes past the 100-byte disconnect budget", wrote)
	}
	if _, err := fc.Write(make([]byte, 8)); err == nil {
		t.Error("write after disconnect should keep failing")
	}
	evs := fc.Events()
	if len(evs) != 1 || evs[0].Kind != EventDisconnect {
		t.Errorf("journal = %v, want one disconnect", evs)
	}
}

func TestConnStall(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close(); _ = b.Close() }()
	fc, err := WrapConn(a, Profile{StallProb: 1, StallDuration: 30 * time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = io.Copy(io.Discard, b) }()
	start := time.Now()
	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("stall not applied: write took %v", elapsed)
	}
}
