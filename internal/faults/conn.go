package faults

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn and injects stream-level faults into its writes:
// byte corruption, silent truncation, stalls and mid-stream disconnects.
// Reads pass through untouched (faults are injected on the sending side so
// one wrapper exercises both ends of a link). Deadline and address methods
// delegate to the wrapped connection.
type Conn struct {
	net.Conn

	mu      sync.Mutex
	rng     *rand.Rand
	profile Profile
	written int64
	dead    bool
	events  []Event
}

// WrapConn wraps c with the profile's stream faults, drawing the schedule
// from seed. The same (profile, seed) pair injects the same faults at the
// same byte offsets for the same write sizes.
func WrapConn(c net.Conn, p Profile, seed int64) (*Conn, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Conn{Conn: c, rng: newRNG(seed), profile: p.sanitized()}, nil
}

// Write injects the scheduled faults, then forwards to the wrapped
// connection. A truncating write reports the full length so the caller
// (like a real kernel buffer drop) never notices.
func (fc *Conn) Write(b []byte) (int, error) {
	fc.mu.Lock()
	if fc.dead {
		fc.mu.Unlock()
		return 0, fmt.Errorf("faults: connection force-closed: %w", net.ErrClosed)
	}
	p := fc.profile
	offset := fc.written
	var stall time.Duration

	// Spontaneous or byte-budget disconnect.
	disconnect := p.DisconnectProb > 0 && fc.rng.Float64() < p.DisconnectProb
	if p.DisconnectAfterBytes > 0 && offset+int64(len(b)) >= p.DisconnectAfterBytes {
		disconnect = true
	}
	if disconnect {
		fc.dead = true
		fc.events = append(fc.events, Event{Kind: EventDisconnect, Index: offset})
		fc.mu.Unlock()
		_ = fc.Conn.Close()
		return 0, fmt.Errorf("faults: injected disconnect at byte %d: %w", offset, net.ErrClosed)
	}

	if p.StallProb > 0 && fc.rng.Float64() < p.StallProb {
		stall = p.StallDuration
		fc.events = append(fc.events, Event{Kind: EventStall, Index: offset, Arg: int64(stall)})
	}

	out := b
	if len(b) > 0 && p.CorruptProb > 0 && fc.rng.Float64() < p.CorruptProb {
		flip := fc.rng.Intn(len(b))
		out = append([]byte(nil), b...)
		out[flip] ^= 0xFF
		fc.events = append(fc.events, Event{Kind: EventCorrupt, Index: offset, Arg: int64(flip)})
	}
	sendLen := len(out)
	if len(b) > 1 && p.TruncateProb > 0 && fc.rng.Float64() < p.TruncateProb {
		sendLen = 1 + fc.rng.Intn(len(out)-1)
		fc.events = append(fc.events, Event{Kind: EventTruncate, Index: offset,
			Arg: int64(len(out) - sendLen)})
	}
	fc.written += int64(len(b))
	fc.mu.Unlock()

	if stall > 0 {
		time.Sleep(stall)
	}
	if _, err := fc.Conn.Write(out[:sendLen]); err != nil {
		return 0, err
	}
	// Report the caller's full length even when truncating: the loss is
	// silent, as a kernel-level drop would be.
	return len(b), nil
}

// Events returns a copy of the journal of injected faults so far.
func (fc *Conn) Events() []Event {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return append([]Event(nil), fc.events...)
}
