package monitorhub

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Totals is the fleet-wide cumulative counter set (sums over all streams).
type Totals struct {
	Streams       int    `json:"streams"`
	Down          int    `json:"down"`
	Packets       uint64 `json:"packets"`
	Sessions      uint64 `json:"sessions"`
	Pending       int    `json:"pending"`
	Identified    uint64 `json:"identified"`
	Shed          uint64 `json:"shed"`
	Failed        uint64 `json:"failed"`
	LowConfidence uint64 `json:"low_confidence"`
	Degenerate    uint64 `json:"degenerate"`
	Rebaselines   uint64 `json:"rebaselines"`
	Swaps         uint64 `json:"swaps"`
	Reconnects    uint64 `json:"reconnects"`
	Events        uint64 `json:"events"`
}

// EpochStats is one closed epoch's activity: the delta of the cumulative
// totals across the epoch interval.
type EpochStats struct {
	Epoch         uint64        `json:"epoch"`
	Packets       uint64        `json:"packets"`
	Sessions      uint64        `json:"sessions"`
	Identified    uint64        `json:"identified"`
	Shed          uint64        `json:"shed"`
	Failed        uint64        `json:"failed"`
	LowConfidence uint64        `json:"low_confidence"`
	Degenerate    uint64        `json:"degenerate"`
	Swaps         uint64        `json:"swaps"`
	Events        uint64        `json:"events"`
	Interval      time.Duration `json:"interval_ns"`
}

// FleetSnapshot is the /v1/fleet response body.
type FleetSnapshot struct {
	Epoch     uint64        `json:"epoch"`
	Totals    Totals        `json:"totals"`
	LastEpoch EpochStats    `json:"last_epoch"`
	Streams   []StreamState `json:"streams"`
	Events    []Event       `json:"events"`
}

// totals sums every stream's cumulative counters.
func (h *Hub) totals() Totals {
	h.mu.Lock()
	order := make([]*stream, len(h.order))
	copy(order, h.order)
	h.mu.Unlock()

	var t Totals
	t.Streams = len(order)
	for _, st := range order {
		s := st.snapshot()
		if s.State == "down" {
			t.Down++
		}
		t.Packets += s.Packets
		t.Sessions += s.Sessions
		t.Pending += s.Pending
		t.Identified += s.Identified
		t.Shed += s.Shed
		t.Failed += s.Failed
		t.LowConfidence += s.LowConf
		t.Degenerate += s.Degenerate
		t.Rebaselines += s.Rebaselines
		t.Swaps += s.Swaps
		t.Reconnects += s.Reconnects
	}
	h.evmu.Lock()
	t.Events = h.evTotal
	h.evmu.Unlock()
	return t
}

// Snapshot assembles the full fleet state: totals, the last closed epoch,
// every stream's row (or just one when streamID is non-empty), and the
// newest eventTail events.
func (h *Hub) Snapshot(streamID string, eventTail int) FleetSnapshot {
	h.mu.Lock()
	order := make([]*stream, 0, len(h.order))
	for _, st := range h.order {
		if streamID == "" || st.id == streamID {
			order = append(order, st)
		}
	}
	h.mu.Unlock()

	snap := FleetSnapshot{
		Totals:  h.totals(),
		Streams: make([]StreamState, 0, len(order)),
		Events:  h.eventTail(eventTail),
	}
	h.epmu.Lock()
	snap.Epoch = h.epoch
	snap.LastEpoch = h.lastEpoch
	h.epmu.Unlock()
	for _, st := range order {
		snap.Streams = append(snap.Streams, st.snapshot())
	}
	return snap
}

// Handler returns the hub's HTTP API:
//
//	GET /v1/fleet            — full fleet snapshot (?stream=ID filters the
//	                           stream rows, ?events=N bounds the event tail)
//	GET /healthz             — liveness
//	GET /readyz              — readiness: 200 once every stream's detector
//	                           has finished learning, 503 before
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		tail := 32
		if v := r.URL.Query().Get("events"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				httpError(w, http.StatusBadRequest, "events must be a non-negative integer")
				return
			}
			tail = n
		}
		writeJSON(w, http.StatusOK, h.Snapshot(r.URL.Query().Get("stream"), tail))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		h.mu.Lock()
		ready := len(h.order) > 0
		learning := 0
		for _, st := range h.order {
			st.mu.Lock()
			if !st.sg.Ready() {
				learning++
			}
			st.mu.Unlock()
		}
		h.mu.Unlock()
		if !ready || learning > 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "learning", "streams_learning": learning,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
