package monitorhub

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/monitor"
	"repro/internal/simulate"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// The three-liquid identifier every hub test shares (training once keeps the
// suite fast).
var (
	fixtureOnce sync.Once
	fixtureID   *core.Identifier
	fixtureErr  error
)

// Soy rather than oil as the third class: oil's dielectric contrast with air
// is too weak for the change-point detector to see its appearance reliably.
var fixtureLiquids = []string{material.Honey, material.PureWater, material.Soy}

func testIdentifier(t *testing.T) *core.Identifier {
	t.Helper()
	fixtureOnce.Do(func() {
		var sessions []*csi.Session
		var labels []string
		for li, name := range fixtureLiquids {
			sc := simulate.Default()
			m, err := material.PaperDatabase().Get(name)
			if err != nil {
				fixtureErr = err
				return
			}
			sc.Liquid = &m
			set, err := simulate.TrialSet(sc, 3, int64(4000+li*97))
			if err != nil {
				fixtureErr = err
				return
			}
			for _, s := range set {
				sessions = append(sessions, s)
				labels = append(labels, name)
			}
		}
		fixtureID, fixtureErr = core.TrainIdentifier(sessions, labels,
			core.IdentifierConfig{Pipeline: core.DefaultConfig()})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureID
}

// liquidStream builds a continuous packet stream: quiet, then the liquid,
// then quiet again — the single-NIC phase-continuous construction the
// monitor tests use.
func liquidStream(t *testing.T, liquid string, quietLen, targetLen int, seed int64) []csi.Packet {
	t.Helper()
	sc := simulate.Default()
	if liquid != "" {
		m, err := material.PaperDatabase().Get(liquid)
		if err != nil {
			t.Fatal(err)
		}
		sc.Liquid = &m
	}
	sc.Packets = 2*quietLen + targetLen
	s, err := simulate.Session(sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	var stream []csi.Packet
	stream = append(stream, s.Baseline.Packets[:quietLen]...)
	stream = append(stream, s.Target.Packets[:targetLen]...)
	stream = append(stream, s.Baseline.Packets[quietLen:2*quietLen]...)
	return stream
}

func testConfig(t *testing.T) Config {
	return Config{
		Identifier:      testIdentifier(t),
		Monitor:         monitor.Config{BaselinePackets: 30},
		ConfidenceFloor: 0.25,
		EpochInterval:   time.Hour, // tests roll epochs by hand
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil identifier should error")
	}
	if _, err := New(Config{Identifier: testIdentifier(t), ConfidenceFloor: 1.5}); err == nil {
		t.Error("out-of-range confidence floor should error")
	}
	if _, err := New(Config{Identifier: testIdentifier(t), Monitor: monitor.Config{BaselinePackets: 2}}); err == nil {
		t.Error("invalid monitor config should error")
	}
	h, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterSource("", transport.NewCaptureSource(&csi.Capture{}), 0); err == nil {
		t.Error("empty stream id should error")
	}
	if err := h.RegisterSource("a", transport.NewCaptureSource(&csi.Capture{}), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.RegisterSource("a", transport.NewCaptureSource(&csi.Capture{}), 0); err == nil {
		t.Error("duplicate stream id should error")
	}
	h.Close()
	if err := h.RegisterSource("b", transport.NewCaptureSource(&csi.Capture{}), 0); err == nil {
		t.Error("registering on a closed hub should error")
	}
}

// TestVerdictHysteresis drives the per-stream state machine directly: the
// first confident verdict confirms, a single disagreement does not swap,
// ConfirmVerdicts consecutive disagreements do, low-confidence verdicts are
// counted but never move the machine.
func TestVerdictHysteresis(t *testing.T) {
	h, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	st, err := h.newStream("tank-1")
	if err != nil {
		t.Fatal(err)
	}

	st.verdict("honey", 0.2, nil) // below floor: ignored by hysteresis
	if st.confirmed != "" || st.lowConf != 1 {
		t.Fatalf("low-confidence verdict moved the machine: confirmed=%q lowConf=%d", st.confirmed, st.lowConf)
	}
	st.verdict("honey", 0.9, nil)
	if st.confirmed != "honey" {
		t.Fatalf("first confident verdict should confirm, got %q", st.confirmed)
	}
	st.verdict("oil", 0.9, nil) // disagreement #1: candidate only
	if st.confirmed != "honey" || st.candidate != "oil" || st.candidateRun != 1 {
		t.Fatalf("single disagreement swapped: confirmed=%q candidate=%q/%d", st.confirmed, st.candidate, st.candidateRun)
	}
	st.verdict("honey", 0.9, nil) // agreement collapses the candidate
	if st.candidate != "" || st.candidateRun != 0 {
		t.Fatalf("agreement should clear the candidate, got %q/%d", st.candidate, st.candidateRun)
	}
	st.verdict("oil", 0.9, nil)
	st.verdict("oil", 0.9, nil) // ConfirmVerdicts(2) in a row: swap
	if st.confirmed != "oil" || st.swaps != 1 {
		t.Fatalf("two consecutive disagreements should swap: confirmed=%q swaps=%d", st.confirmed, st.swaps)
	}
	st.verdict("", 0, fmt.Errorf("degraded session")) // classifier failure
	if st.failed != 1 || st.confirmed != "oil" {
		t.Fatalf("failed verdict mishandled: failed=%d confirmed=%q", st.failed, st.confirmed)
	}

	kinds := map[string]int{}
	for _, ev := range h.eventTail(0) {
		kinds[ev.Kind]++
	}
	if kinds["material-identified"] != 1 || kinds["material-swapped"] != 1 {
		t.Fatalf("event log wrong: %v", kinds)
	}
}

// TestShedOldestUnderBackpressure wedges the single identification worker
// and floods one stream: ingest must never block, pending must stay bounded
// at PendingPerStream with the OLDEST sessions shed, and after the worker is
// released every remaining session must still be identified.
func TestShedOldestUnderBackpressure(t *testing.T) {
	defer testutil.LeakCheck(t, 3)()
	release := make(chan struct{})
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.PendingPerStream = 2
	cfg.Segment = monitor.SegmenterOptions{Settle: 3, TargetLen: 15, BaselineLen: 15, Stride: 5}
	cfg.testHold = func(string) { <-release }
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.newStream("flooded")
	if err != nil {
		t.Fatal(err)
	}

	// Feed synchronously: the sliding window emits a session every 5
	// target packets while the wedged worker identifies none.
	for _, pkt := range liquidStream(t, material.Honey, 40, 200, 7) {
		if err := st.feed(pkt); err != nil {
			t.Fatal(err)
		}
	}
	st.mu.Lock()
	sessions, shed, pend := st.sessions, st.shed, st.pendLen
	st.mu.Unlock()
	if sessions < 10 {
		t.Fatalf("stream produced only %d sessions; stimulus too weak", sessions)
	}
	if pend > 2 {
		t.Fatalf("pending %d exceeds PendingPerStream 2", pend)
	}
	if shed == 0 {
		t.Fatal("overload shed nothing — backpressure did not engage")
	}

	close(release)
	h.Close() // drain: the worker finishes everything still pending

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.pendLen != 0 {
		t.Fatalf("%d sessions still pending after drain", st.pendLen)
	}
	// Conservation: every session was either shed or reached a verdict.
	if got := st.shed + st.identified + st.failed; got != st.sessions {
		t.Fatalf("session accounting broken: shed %d + identified %d + failed %d != sessions %d",
			st.shed, st.identified, st.failed, st.sessions)
	}
	if st.identified == 0 {
		t.Fatal("nothing identified after release")
	}
}

// TestHubEndToEndSources registers in-process streams carrying different
// liquids and waits for the fleet to confirm each one; then checks removal
// events, epoch aggregation, and the HTTP surface.
func TestHubEndToEndSources(t *testing.T) {
	defer testutil.LeakCheck(t, 3)()
	cfg := testConfig(t)
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]string{
		"vat-honey": material.Honey,
		"vat-water": material.PureWater,
		"vat-soy":   material.Soy,
	}
	for id, liquid := range want {
		capture := &csi.Capture{Packets: liquidStream(t, liquid, 40, 160, 11)}
		if err := h.RegisterSource(id, transport.NewCaptureSource(capture), 0); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	var snap FleetSnapshot
	for {
		snap = h.Snapshot("", 0)
		confirmed := 0
		for _, s := range snap.Streams {
			if s.Confirmed == want[s.ID] {
				confirmed++
			}
		}
		if confirmed == len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged: %+v", snap.Streams)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Streams end in a quiet stretch: removal events must arrive too.
	removalDeadline := time.Now().Add(10 * time.Second)
	for {
		kinds := map[string]int{}
		for _, ev := range h.eventTail(0) {
			kinds[ev.Kind]++
		}
		if kinds["vessel-removed"] == len(want) {
			break
		}
		if time.Now().After(removalDeadline) {
			t.Fatalf("vessel removals missing: %v", kinds)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Epoch roll: activity lands in the closed epoch, a second roll with a
	// finished fleet shows (near-)zero new packets.
	h.rollEpoch()
	h.epmu.Lock()
	first := h.lastEpoch
	h.epmu.Unlock()
	if first.Packets == 0 || first.Sessions == 0 || first.Identified == 0 {
		t.Fatalf("first epoch empty: %+v", first)
	}
	h.rollEpoch()
	h.epmu.Lock()
	second := h.lastEpoch
	h.epmu.Unlock()
	if second.Epoch != first.Epoch+1 {
		t.Fatalf("epochs did not advance: %d then %d", first.Epoch, second.Epoch)
	}
	if second.Packets != 0 {
		t.Fatalf("finished fleet still produced %d packets in epoch %d", second.Packets, second.Epoch)
	}

	// HTTP surface.
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/fleet?events=8", nil)
	h.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/v1/fleet: %d: %s", rec.Code, rec.Body.String())
	}
	var body FleetSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Streams) != len(want) || body.Totals.Streams != len(want) {
		t.Fatalf("fleet body wrong: %d streams, totals %+v", len(body.Streams), body.Totals)
	}
	if len(body.Events) == 0 || len(body.Events) > 8 {
		t.Fatalf("event tail wrong: %d events", len(body.Events))
	}
	for _, s := range body.Streams {
		if s.Confirmed != want[s.ID] {
			t.Errorf("stream %s confirmed %q, want %q", s.ID, s.Confirmed, want[s.ID])
		}
	}

	// ?stream= filter.
	rec = httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/fleet?stream=vat-honey", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Streams) != 1 || body.Streams[0].ID != "vat-honey" {
		t.Fatalf("stream filter wrong: %+v", body.Streams)
	}

	// Health endpoints: ready once every detector has learned (they all
	// have by now — each stream confirmed a material).
	rec = httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz: %d: %s", rec.Code, rec.Body.String())
	}

	h.Close()
	h.Close() // idempotent
}

// TestReadyzBeforeLearning: an empty hub (and one whose streams are still
// learning) is not ready.
func TestReadyzBeforeLearning(t *testing.T) {
	h, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz on empty hub: %d, want 503", rec.Code)
	}
	if _, err := h.newStream("cold"); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz while learning: %d, want 503", rec.Code)
	}
}

// TestEventRingBounded: the global event log never exceeds its capacity and
// keeps the newest entries.
func TestEventRingBounded(t *testing.T) {
	cfg := testConfig(t)
	cfg.EventLog = 8
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 50; i++ {
		h.recordEvent(Event{Stream: "s", Kind: "target-appeared"})
	}
	tail := h.eventTail(0)
	if len(tail) != 8 {
		t.Fatalf("event tail %d entries, want 8", len(tail))
	}
	if tail[len(tail)-1].Seq != 50 || tail[0].Seq != 43 {
		t.Fatalf("ring kept wrong window: seqs %d..%d", tail[0].Seq, tail[len(tail)-1].Seq)
	}
	if got := h.eventTail(3); len(got) != 3 || got[2].Seq != 50 {
		t.Fatalf("bounded tail wrong: %+v", got)
	}
}
