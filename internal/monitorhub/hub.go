// Package monitorhub scales the single-stream passive monitor to a fleet:
// one hub multiplexes many concurrent CSI streams (TCP collectors or
// in-process sources), runs per-stream CUSUM change-point detection and
// sliding-window segmentation, and identifies every completed session on
// pooled core.Pipelines — the paper's Fig. 1 vision at the scale the serving
// tier already classifies at.
//
// Backpressure is explicit end-to-end. Ingest never blocks: a completed
// session lands in the stream's bounded pending ring, and when the ring is
// full the OLDEST pending session is shed (and counted) — a slow classifier
// degrades freshness per stream, never stalls packet intake or starves other
// streams. Identification workers drain a dirty-stream FIFO in which each
// stream appears at most once, so a flooding stream gets one session per
// turn, round-robin with everyone else.
//
// Event flow gets hysteresis: "material-identified" fires on the first
// confident verdict of an appearance, "material-swapped" only after
// ConfirmVerdicts consecutive confident verdicts that agree on a different
// material, and "vessel-removed" rides the detector's TargetRemoved. Fleet
// state — per-stream state machine, last verdict, event-log tail, shed and
// degenerate counters, epoch-aggregated rates — is served over HTTP
// (/v1/fleet, /healthz, /readyz).
package monitorhub

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/monitor"
	"repro/internal/transport"
)

// Config parameterises the hub. Identifier is required; the zero value of
// every other field selects a default.
type Config struct {
	// Identifier classifies segmented sessions. Required.
	Identifier *core.Identifier
	// Carrier is the channel centre frequency stamped on segmented
	// sessions. Zero selects 5.32 GHz (the paper's channel).
	Carrier float64
	// Monitor configures every stream's change-point detector (including
	// the re-baselining knob for long-lived streams).
	Monitor monitor.Config
	// Segment shapes the sessions carved from each stream. Zero values
	// select Settle 5, TargetLen 20, BaselineLen 20, Stride 20 — sliding
	// re-identification on by default, because a hub stream is long-lived.
	Segment monitor.SegmenterOptions
	// Workers is the identification worker count (default GOMAXPROCS).
	Workers int
	// BatchMax bounds how many distinct dirty streams one worker drains
	// into a single batched classification (core.IdentifyDetailedBatchP:
	// per-capture DSP + one blocked SVM predict). 1 disables cross-stream
	// batching (default 8).
	BatchMax int
	// BatchLinger is how long a worker holding a non-empty, non-full batch
	// waits for more dirty streams before classifying — the bounded flush
	// that keeps a lone stream from waiting on a batch that will never
	// fill. Default 0: classify immediately with whatever is dirty.
	BatchLinger time.Duration
	// PendingPerStream bounds each stream's ring of sessions awaiting
	// identification; overflow sheds the oldest (default 2).
	PendingPerStream int
	// ConfirmVerdicts is how many consecutive confident verdicts for the
	// same differing material confirm a swap (default 2).
	ConfirmVerdicts int
	// ConfidenceFloor is the minimum verdict confidence that counts toward
	// confirmation or swap; lower verdicts are recorded but ignored by the
	// hysteresis (default 0.5).
	ConfidenceFloor float64
	// EpochInterval is the fleet-stats aggregation cadence (default 5s).
	EpochInterval time.Duration
	// EventLog bounds the global event ring (default 256).
	EventLog int

	// testHold, when non-nil, runs on the worker goroutine before every
	// identification — the hook tests use to wedge the classifier
	// deterministically and watch the shed policy. Never set in production.
	testHold func(streamID string)
	// testVerdict, when non-nil, observes every delivered verdict in
	// per-stream delivery order — the hook the batched-vs-sequential
	// bit-identity test compares against. Never set in production.
	testVerdict func(streamID string, det core.Detail, err error)
}

func (c Config) withDefaults() Config {
	if c.Carrier == 0 {
		c.Carrier = 5.32e9
	}
	if c.Segment.Settle == 0 {
		c.Segment.Settle = 5
	}
	if c.Segment.TargetLen == 0 {
		c.Segment.TargetLen = 20
	}
	if c.Segment.BaselineLen == 0 {
		c.Segment.BaselineLen = 20
	}
	if c.Segment.Stride == 0 {
		c.Segment.Stride = 20
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchMax == 0 {
		c.BatchMax = 8
	}
	if c.PendingPerStream == 0 {
		c.PendingPerStream = 2
	}
	if c.ConfirmVerdicts == 0 {
		c.ConfirmVerdicts = 2
	}
	if c.ConfidenceFloor == 0 {
		c.ConfidenceFloor = 0.5
	}
	if c.EpochInterval == 0 {
		c.EpochInterval = 5 * time.Second
	}
	if c.EventLog == 0 {
		c.EventLog = 256
	}
	return c
}

// Hub multiplexes many monitored CSI streams into one identification worker
// pool and aggregates fleet state.
type Hub struct {
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	streams map[string]*stream
	order   []*stream // registration order, for stable /v1/fleet output
	closed  bool

	// Dirty-stream FIFO: streams with pending sessions, each present at
	// most once (st.queued). Workers block on qcond.
	qmu     sync.Mutex
	qcond   *sync.Cond
	qhead   *stream
	qtail   *stream
	qclosed bool

	// Event ring (global, bounded).
	evmu    sync.Mutex
	events  []Event
	evNext  int
	evSeq   uint64
	evTotal uint64

	// Epoch aggregation.
	epmu      sync.Mutex
	epoch     uint64
	prevTotal Totals
	lastEpoch EpochStats

	ingestWG sync.WaitGroup
	workerWG sync.WaitGroup
	tickerWG sync.WaitGroup
}

// Event is one entry of the fleet event log.
type Event struct {
	// Seq is a hub-wide monotonically increasing event number.
	Seq uint64 `json:"seq"`
	// Epoch is the aggregation epoch the event fell into.
	Epoch uint64 `json:"epoch"`
	// Stream is the emitting stream's ID.
	Stream string `json:"stream"`
	// Kind is one of target-appeared, vessel-removed, material-identified,
	// material-swapped, stream-down, stream-up.
	Kind string `json:"kind"`
	// Material is the verdict for identification events.
	Material string `json:"material,omitempty"`
	// From is the previously confirmed material on material-swapped.
	From string `json:"from,omitempty"`
	// Confidence is the verdict confidence for identification events.
	Confidence float64 `json:"confidence,omitempty"`
	// Detail carries the error text of stream-down events.
	Detail string `json:"detail,omitempty"`
	// Time is the hub-side wall clock of the event.
	Time time.Time `json:"time"`
}

// New validates the configuration and starts the identification workers and
// the epoch ticker. Stop with Close.
func New(cfg Config) (*Hub, error) {
	if cfg.Identifier == nil {
		return nil, fmt.Errorf("monitorhub: nil identifier")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Monitor.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers < 1 || cfg.PendingPerStream < 1 || cfg.ConfirmVerdicts < 1 || cfg.BatchMax < 1 {
		return nil, fmt.Errorf("monitorhub: non-positive Workers/PendingPerStream/ConfirmVerdicts/BatchMax")
	}
	if cfg.BatchLinger < 0 {
		return nil, fmt.Errorf("monitorhub: negative BatchLinger %v", cfg.BatchLinger)
	}
	if cfg.ConfidenceFloor < 0 || cfg.ConfidenceFloor > 1 {
		return nil, fmt.Errorf("monitorhub: ConfidenceFloor %v outside [0,1]", cfg.ConfidenceFloor)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &Hub{
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		streams: make(map[string]*stream),
		events:  make([]Event, 0, cfg.EventLog),
	}
	h.qcond = sync.NewCond(&h.qmu)
	for i := 0; i < cfg.Workers; i++ {
		h.workerWG.Add(1)
		go h.worker()
	}
	h.tickerWG.Add(1)
	go h.epochLoop()
	return h, nil
}

// newStream builds and registers the bookkeeping for one stream.
func (h *Hub) newStream(id string) (*stream, error) {
	if id == "" {
		return nil, fmt.Errorf("monitorhub: empty stream id")
	}
	sg, err := monitor.NewSegmenterOpts(h.cfg.Monitor, h.cfg.Carrier, h.cfg.Segment)
	if err != nil {
		return nil, err
	}
	st := &stream{
		id:      id,
		hub:     h,
		sg:      sg,
		pending: make([]*csi.Session, h.cfg.PendingPerStream),
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("monitorhub: hub is closed")
	}
	if _, dup := h.streams[id]; dup {
		return nil, fmt.Errorf("monitorhub: stream %q already registered", id)
	}
	h.streams[id] = st
	h.order = append(h.order, st)
	return st, nil
}

// RegisterCollector adds a TCP stream: a transport.Collector (reconnect,
// dedupe, read deadlines, CRC skipping — the existing resilience) dials
// cfg.Addr and feeds every distinct packet into the stream's segmenter. The
// collector is re-run after it exhausts its retry budget or the server ends
// the stream, with redialPause between rounds, until the hub closes — a
// fleet source that goes down for minutes comes back without operator
// action. Collection never retains packets (DiscardDelivered) and, unless
// the caller set one, dedupe memory is bounded to a sliding window.
func (h *Hub) RegisterCollector(id string, ccfg transport.CollectorConfig, redialPause time.Duration) error {
	ccfg.DiscardDelivered = true
	ccfg.MaxPackets = 0 // unbounded live stream
	if ccfg.DedupWindow == 0 {
		ccfg.DedupWindow = 4096
	}
	if redialPause <= 0 {
		redialPause = time.Second
	}
	st, err := h.newStream(id)
	if err != nil {
		return err
	}
	// Validate the collector config once up front so a bad registration
	// fails loudly instead of spinning in the redial loop.
	probe := ccfg
	probe.OnPacket = st.feed
	if _, err := transport.NewCollector(probe); err != nil {
		h.dropStream(id)
		return err
	}
	h.ingestWG.Add(1)
	go h.runCollector(st, ccfg, redialPause)
	return nil
}

// RegisterFeed adds a stream the caller pushes packets into directly: the
// returned function is the stream's synchronous ingest path (per-packet
// detection, segmentation, pending-ring admission). It never blocks on the
// classifier and is safe to call from exactly one goroutine at a time.
// Callers must stop feeding before Close — packets pushed after the drain
// are still segmented but no worker remains to identify them.
func (h *Hub) RegisterFeed(id string) (func(csi.Packet) error, error) {
	st, err := h.newStream(id)
	if err != nil {
		return nil, err
	}
	return st.feed, nil
}

// RegisterSource adds an in-process stream read from src, one packet per
// interval (zero streams as fast as possible). io.EOF ends the stream
// cleanly; any other error marks it down.
func (h *Hub) RegisterSource(id string, src transport.PacketSource, interval time.Duration) error {
	st, err := h.newStream(id)
	if err != nil {
		return err
	}
	h.ingestWG.Add(1)
	go h.runSource(st, src, interval)
	return nil
}

// dropStream removes a stream whose ingest could not start.
func (h *Hub) dropStream(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.streams[id]
	delete(h.streams, id)
	for i, s := range h.order {
		if s == st {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
}

// runCollector drives one TCP stream until the hub closes.
func (h *Hub) runCollector(st *stream, ccfg transport.CollectorConfig, redialPause time.Duration) {
	defer h.ingestWG.Done()
	for h.ctx.Err() == nil {
		col, err := transport.NewCollector(collectorConfigFor(st, ccfg))
		if err != nil {
			st.markDown(err) // cannot happen after the Register probe; be safe
			return
		}
		_, stats, err := col.Run(h.ctx)
		st.addCollectStats(stats)
		if h.ctx.Err() != nil {
			return
		}
		if err != nil {
			st.markDown(err)
		}
		// Clean end of stream or exhausted retries: pause, then start a
		// fresh collection round against the same source.
		select {
		case <-time.After(redialPause):
		case <-h.ctx.Done():
			return
		}
	}
}

// collectorConfigFor wires the stream's delivery callback into a copy of
// the registered collector config.
func collectorConfigFor(st *stream, ccfg transport.CollectorConfig) transport.CollectorConfig {
	ccfg.OnPacket = st.feed
	return ccfg
}

// runSource drives one in-process stream until EOF, error, or hub close.
func (h *Hub) runSource(st *stream, src transport.PacketSource, interval time.Duration) {
	defer h.ingestWG.Done()
	var timer *time.Timer
	if interval > 0 {
		timer = time.NewTimer(interval)
		defer timer.Stop()
	}
	for h.ctx.Err() == nil {
		pkt, err := src.Next()
		if err != nil {
			if !isEOF(err) {
				st.markDown(err)
			}
			return
		}
		if err := st.feed(pkt); err != nil {
			return
		}
		if timer != nil {
			timer.Reset(interval)
			select {
			case <-timer.C:
			case <-h.ctx.Done():
				return
			}
		}
	}
}

// enqueue appends a dirty stream to the worker FIFO. The caller must have
// set st.queued under st.mu; each stream is in the queue at most once, so
// queue length is bounded by the stream count.
func (h *Hub) enqueue(st *stream) {
	h.qmu.Lock()
	if h.qtail == nil {
		h.qhead, h.qtail = st, st
	} else {
		h.qtail.next = st
		h.qtail = st
	}
	h.qcond.Signal()
	h.qmu.Unlock()
}

// popLocked removes the FIFO head, or returns nil when the queue is empty.
// Caller holds h.qmu.
func (h *Hub) popLocked() *stream {
	st := h.qhead
	if st == nil {
		return nil
	}
	h.qhead = st.next
	if h.qhead == nil {
		h.qtail = nil
	}
	st.next = nil
	return st
}

// collectBatch pops up to BatchMax dirty streams into buf, blocking while
// the queue is empty and open. A non-empty batch that did not fill waits at
// most BatchLinger for stragglers before flushing, so a lone stream's
// verdict latency is bounded by the linger, never by batch arithmetic. An
// empty return means the queue is closed AND drained — the worker's exit
// signal (drain still runs everything pending, including streams a worker
// re-enqueues after the close).
func (h *Hub) collectBatch(buf []*stream) []*stream {
	max := h.cfg.BatchMax
	h.qmu.Lock()
	for h.qhead == nil && !h.qclosed {
		h.qcond.Wait()
	}
	for len(buf) < max {
		st := h.popLocked()
		if st == nil {
			break
		}
		buf = append(buf, st)
	}
	closed := h.qclosed
	h.qmu.Unlock()
	if linger := h.cfg.BatchLinger; linger > 0 && !closed && len(buf) > 0 && len(buf) < max {
		time.Sleep(linger)
		h.qmu.Lock()
		for len(buf) < max {
			st := h.popLocked()
			if st == nil {
				break
			}
			buf = append(buf, st)
		}
		h.qmu.Unlock()
	}
	return buf
}

// worker drains the dirty-stream queue in cross-stream micro-batches: up to
// BatchMax streams are collected, one pending session popped from each, and
// the whole batch classified in a single core.IdentifyDetailedBatchCachedP
// call (per-capture DSP against the stream's baseline cache + one blocked
// SVM predict). Verdict delivery is per-stream via finish, which also
// returns the session's storage to the segmenter ring and only then clears
// the stream's in-flight claim — a stream stays out of every other worker's
// reach from pop to verdict, so per-stream verdict order is emission order
// at any worker count. Fairness is unchanged: one session per stream per
// batch, streams with more pending work re-enter the FIFO after delivery.
func (h *Hub) worker() {
	defer h.workerWG.Done()
	max := h.cfg.BatchMax
	var (
		batch    = make([]*stream, 0, max)
		live     = make([]*stream, 0, max)
		sessions = make([]*csi.Session, 0, max)
		caches   = make([]*core.BaselineCache, 0, max)
		pls      = make([]*core.Pipeline, 0, max)
		bs       core.BatchScratch
	)
	for {
		batch = h.collectBatch(batch[:0])
		if len(batch) == 0 {
			return
		}
		live, sessions, caches = live[:0], sessions[:0], caches[:0]
		for _, st := range batch {
			st.mu.Lock()
			session := st.popPendingLocked()
			if session == nil {
				// Every pop is preceded by an enqueue with pending work and
				// sessions only leave the ring through a worker or the shed
				// policy, but be defensive: clear the claim so the stream
				// can be re-enqueued.
				st.queued = false
				st.mu.Unlock()
				continue
			}
			st.mu.Unlock()
			if h.cfg.testHold != nil {
				h.cfg.testHold(st.id)
			}
			live = append(live, st)
			sessions = append(sessions, session)
			caches = append(caches, &st.blc)
		}
		if len(live) == 0 {
			continue
		}
		for len(pls) < len(live) {
			pls = append(pls, core.GetPipeline())
		}
		// Inner workers=1: hub workers are the parallelism, one batch per
		// worker; fanning out inside the batch would just contend.
		dets, errs := h.cfg.Identifier.IdentifyDetailedBatchCachedP(&bs, pls[:len(live)], sessions, caches, 1)
		for i, st := range live {
			st.finish(dets[i], errs[i], sessions[i])
		}
		for _, pl := range pls {
			core.PutPipeline(pl)
		}
		pls = pls[:0]
	}
}

// recordEvent appends to the bounded global event ring. The timestamp and
// epoch are captured before taking evmu, keeping the critical section to
// the ring bookkeeping itself.
func (h *Hub) recordEvent(ev Event) {
	ev.Time = time.Now()
	ev.Epoch = h.currentEpoch()
	h.evmu.Lock()
	h.evSeq++
	ev.Seq = h.evSeq
	if len(h.events) < cap(h.events) {
		h.events = append(h.events, ev)
	} else {
		h.events[h.evNext] = ev
		h.evNext = (h.evNext + 1) % cap(h.events)
	}
	h.evTotal++
	h.evmu.Unlock()
}

// eventTail returns up to n newest events, oldest first.
func (h *Hub) eventTail(n int) []Event {
	h.evmu.Lock()
	defer h.evmu.Unlock()
	total := len(h.events)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]Event, 0, n)
	// Ring order: evNext is the oldest entry once the ring wrapped.
	start := 0
	if total == cap(h.events) {
		start = h.evNext
	}
	for i := total - n; i < total; i++ {
		out = append(out, h.events[(start+i)%total])
	}
	return out
}

func (h *Hub) currentEpoch() uint64 {
	h.epmu.Lock()
	defer h.epmu.Unlock()
	return h.epoch
}

// epochLoop rolls the fleet aggregates every EpochInterval.
func (h *Hub) epochLoop() {
	defer h.tickerWG.Done()
	t := time.NewTicker(h.cfg.EpochInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			h.rollEpoch()
		case <-h.ctx.Done():
			return
		}
	}
}

// rollEpoch closes the current epoch: the delta of the cumulative totals
// since the last roll becomes the epoch's rates snapshot.
func (h *Hub) rollEpoch() {
	now := h.totals()
	h.epmu.Lock()
	h.epoch++
	h.lastEpoch = EpochStats{
		Epoch:         h.epoch - 1,
		Packets:       now.Packets - h.prevTotal.Packets,
		Sessions:      now.Sessions - h.prevTotal.Sessions,
		Identified:    now.Identified - h.prevTotal.Identified,
		Shed:          now.Shed - h.prevTotal.Shed,
		Failed:        now.Failed - h.prevTotal.Failed,
		LowConfidence: now.LowConfidence - h.prevTotal.LowConfidence,
		Degenerate:    now.Degenerate - h.prevTotal.Degenerate,
		Swaps:         now.Swaps - h.prevTotal.Swaps,
		Events:        now.Events - h.prevTotal.Events,
		Interval:      h.cfg.EpochInterval,
	}
	h.prevTotal = now
	h.epmu.Unlock()
}

// Close drains the hub: ingest stops (collector contexts cancelled, source
// pumps unblocked), every already-pending session still runs through the
// workers, and Close returns once the pool has exited. Safe to call twice.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		// Still wait: a concurrent Close should not return early.
		h.ingestWG.Wait()
		h.workerWG.Wait()
		h.tickerWG.Wait()
		return
	}
	h.closed = true
	h.mu.Unlock()

	h.cancel()
	h.ingestWG.Wait()

	h.qmu.Lock()
	h.qclosed = true
	h.qcond.Broadcast()
	h.qmu.Unlock()
	h.workerWG.Wait()
	h.tickerWG.Wait()
}

func isEOF(err error) bool {
	return errors.Is(err, io.EOF)
}
