package monitorhub

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/monitor"
	"repro/internal/testutil"
)

// batchTestSegment is the segmenter shape the bit-identity drill uses: a
// tight stride so every stream emits many sessions per appearance.
var batchTestSegment = monitor.SegmenterOptions{Settle: 3, TargetLen: 15, BaselineLen: 15, Stride: 5}

// verdictRec is one delivered identification result as the testVerdict hook
// sees it.
type verdictRec struct {
	det core.Detail
	err string
}

// TestBatchedVerdictsBitIdenticalSequential pins the tentpole's correctness
// contract: whatever the worker count, batch size, and linger, the hub's
// cross-stream batched, baseline-cached identification delivers — per
// stream, in emission order — exactly the verdict sequence a sequential,
// uncached IdentifyDetailedP over the same segmented sessions produces.
// Each stream carries TWO appearances of different liquids, so every
// per-stream BaselineCache crosses an invalidation mid-run.
func TestBatchedVerdictsBitIdenticalSequential(t *testing.T) {
	defer testutil.LeakCheck(t, 3)()
	id := testIdentifier(t)

	// Six streams, two appearances each, liquids rotating so neighbouring
	// streams inside one classification batch carry different materials.
	const nStreams = 6
	pkts := make([][]csi.Packet, nStreams)
	names := make([]string, nStreams)
	for i := 0; i < nStreams; i++ {
		first := fixtureLiquids[i%len(fixtureLiquids)]
		second := fixtureLiquids[(i+1)%len(fixtureLiquids)]
		stream := liquidStream(t, first, 40, 120, int64(900+i*13))
		stream = append(stream, liquidStream(t, second, 40, 120, int64(1700+i*13))...)
		pkts[i] = stream
		names[i] = fmt.Sprintf("vat-%02d", i)
	}

	// Reference: the same segmenter shape fed the same packets, every
	// emitted session identified sequentially through the plain uncached
	// single-session path.
	want := make([][]verdictRec, nStreams)
	pl := core.NewPipeline()
	for i := range pkts {
		sg, err := monitor.NewSegmenterOpts(monitor.Config{BaselinePackets: 30}, 5.32e9, batchTestSegment)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkt := range pkts[i] {
			s, _, err := sg.Feed(pkt)
			if err != nil {
				t.Fatal(err)
			}
			if s == nil {
				continue
			}
			det, derr := id.IdentifyDetailedP(pl, s)
			rec := verdictRec{det: det}
			if derr != nil {
				rec.err = derr.Error()
			}
			want[i] = append(want[i], rec)
			s.Release()
		}
		if len(want[i]) < 8 {
			t.Fatalf("reference stream %d emitted only %d sessions; stimulus too weak", i, len(want[i]))
		}
	}

	for _, tc := range []struct {
		workers, batchMax int
		linger            bool
	}{
		{workers: 1, batchMax: 1},
		{workers: 1, batchMax: 8},
		{workers: 4, batchMax: 1},
		{workers: 4, batchMax: 3},
		{workers: 4, batchMax: 8},
		{workers: 4, batchMax: 8, linger: true},
	} {
		name := fmt.Sprintf("workers=%d,batch=%d,linger=%v", tc.workers, tc.batchMax, tc.linger)
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			got := make(map[string][]verdictRec)
			cfg := testConfig(t)
			cfg.Segment = batchTestSegment
			cfg.Workers = tc.workers
			cfg.BatchMax = tc.batchMax
			if tc.linger {
				cfg.BatchLinger = 200 * time.Microsecond
			}
			// Deep pending rings: shedding would make the verdict sequence
			// load-dependent, and this drill pins determinism.
			cfg.PendingPerStream = 64
			cfg.testVerdict = func(streamID string, det core.Detail, err error) {
				rec := verdictRec{det: det}
				if err != nil {
					rec.err = err.Error()
				}
				mu.Lock()
				got[streamID] = append(got[streamID], rec)
				mu.Unlock()
			}
			h, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sts := make([]*stream, nStreams)
			for i := range sts {
				st, err := h.newStream(names[i])
				if err != nil {
					t.Fatal(err)
				}
				sts[i] = st
			}
			// Interleave ingest round-robin packet-by-packet: different
			// streams go dirty together, so the collector actually forms
			// cross-stream batches while workers race the feeder.
			for p := 0; p < len(pkts[0]); p++ {
				for i, st := range sts {
					if err := st.feed(pkts[i][p]); err != nil {
						t.Fatal(err)
					}
				}
			}
			h.Close() // drain every pending session

			mu.Lock()
			defer mu.Unlock()
			for i := range sts {
				g := got[names[i]]
				if len(g) != len(want[i]) {
					t.Fatalf("stream %s: %d verdicts, want %d", names[i], len(g), len(want[i]))
				}
				for j := range g {
					if g[j] != want[i][j] {
						t.Fatalf("stream %s verdict %d: batched %+v != sequential %+v",
							names[i], j, g[j], want[i][j])
					}
				}
			}
		})
	}
}
