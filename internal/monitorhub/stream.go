package monitorhub

import (
	"sync"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/monitor"
	"repro/internal/transport"
)

// stream is the hub's bookkeeping for one monitored CSI source: its
// segmenter, the bounded ring of sessions awaiting identification, the
// verdict-hysteresis state, and cumulative counters. All mutable state —
// including the segmenter, whose accessors the fleet snapshot reads
// concurrently with ingest — is guarded by mu.
type stream struct {
	id  string
	hub *Hub
	sg  *monitor.Segmenter

	mu sync.Mutex

	// pending is a fixed-capacity ring of sessions awaiting a worker.
	// pendHead indexes the oldest entry; pushing onto a full ring
	// overwrites (sheds) that oldest entry — freshness beats completeness
	// for a live monitor, and ingest never blocks on the classifier.
	pending  []*csi.Session
	pendHead int
	pendLen  int

	// queued is true while the stream sits in the hub's dirty FIFO OR has a
	// session in flight on a worker (the in-flight claim): it is enqueued at
	// most once, whatever its pending depth, and no second worker can pop
	// from it until finish clears the claim — per-stream verdicts stay in
	// emission order at any worker count.
	queued bool
	next   *stream // intrusive dirty-FIFO link, guarded by hub.qmu

	// blc caches the baseline-side DSP of the stream's current appearance.
	// Touched only by the worker whose batch holds this stream's in-flight
	// session; the claim serializes access, and the enqueue/pop lock chain
	// orders one worker's writes before the next worker's reads.
	blc core.BaselineCache

	// Hysteresis state. confirmed is the material the hub currently
	// believes is in the vessel; a differing confident verdict must repeat
	// ConfirmVerdicts times in a row (candidate/candidateRun) before the
	// hub declares a swap.
	confirmed    string
	lastMaterial string
	lastConf     float64
	candidate    string
	candidateRun int

	// Cumulative counters (monotonic; epochs diff them).
	packets    uint64
	sessions   uint64
	identified uint64
	shed       uint64
	failed     uint64
	lowConf    uint64
	swaps      uint64
	reconnects uint64
	dupes      uint64
	crcSkipped uint64

	down    bool
	lastErr string
}

// feed pushes one delivered packet through the stream's segmenter and, when
// a session completes, into the pending ring. It is the OnPacket callback of
// the stream's collector (and the source pump's delivery path): it must be
// fast and must never block.
func (st *stream) feed(pkt csi.Packet) error {
	var emits []Event
	mustQueue := false

	st.mu.Lock()
	session, ev, err := st.sg.Feed(pkt)
	st.packets++
	if st.down {
		st.down = false
		st.lastErr = ""
		emits = append(emits, Event{Stream: st.id, Kind: "stream-up"})
	}
	// err means a degenerate packet (zero power): the detector already
	// counted it and the stream carries on.
	if err == nil && ev != nil {
		switch ev.Kind {
		case monitor.TargetAppeared:
			emits = append(emits, Event{Stream: st.id, Kind: "target-appeared"})
		case monitor.TargetRemoved:
			st.confirmed = ""
			st.candidate = ""
			st.candidateRun = 0
			emits = append(emits, Event{Stream: st.id, Kind: "vessel-removed"})
		}
	}
	if session != nil {
		st.sessions++
		n := len(st.pending)
		if st.pendLen == n {
			// Shed the OLDEST pending session: advance the head over it so
			// the newest work survives. Its storage goes straight back to
			// the segmenter ring (st.mu is the ring's lock).
			shed := st.pending[st.pendHead]
			st.pending[st.pendHead] = nil
			st.pendHead = (st.pendHead + 1) % n
			st.pendLen--
			st.shed++
			shed.Release()
		}
		st.pending[(st.pendHead+st.pendLen)%n] = session
		st.pendLen++
		if !st.queued {
			st.queued = true
			mustQueue = true
		}
	}
	st.mu.Unlock()

	for _, e := range emits {
		st.hub.recordEvent(e)
	}
	if mustQueue {
		st.hub.enqueue(st)
	}
	return nil
}

// popPendingLocked removes and returns the oldest pending session, or nil.
// Caller holds st.mu.
func (st *stream) popPendingLocked() *csi.Session {
	if st.pendLen == 0 {
		return nil
	}
	s := st.pending[st.pendHead]
	st.pending[st.pendHead] = nil
	st.pendHead = (st.pendHead + 1) % len(st.pending)
	st.pendLen--
	return s
}

// finish delivers one identification result: the hysteresis fold and events
// via verdict, then — under st.mu, which is also the segmenter ring's lock —
// the session's storage returns to the ring and the stream re-enters the
// dirty FIFO if more sessions are pending. Only here does the in-flight
// claim (queued) clear, so one stream's sessions are identified strictly in
// emission order whatever the worker count.
func (st *stream) finish(det core.Detail, err error, session *csi.Session) {
	if st.hub.cfg.testVerdict != nil {
		st.hub.cfg.testVerdict(st.id, det, err)
	}
	st.verdict(det.Material, det.Confidence, err)
	st.mu.Lock()
	session.Release()
	more := st.pendLen > 0
	st.queued = more
	st.mu.Unlock()
	if more {
		st.hub.enqueue(st)
	}
}

// verdict folds one identification result into the stream's hysteresis
// machine and emits material-identified / material-swapped events.
func (st *stream) verdict(label string, conf float64, err error) {
	var emit *Event

	st.mu.Lock()
	switch {
	case err != nil:
		st.failed++
	case conf < st.hub.cfg.ConfidenceFloor:
		// Recorded for /v1/fleet, but too weak to move the state machine.
		st.identified++
		st.lowConf++
		st.lastMaterial, st.lastConf = label, conf
	default:
		st.identified++
		st.lastMaterial, st.lastConf = label, conf
		switch {
		case st.confirmed == "":
			// First confident verdict of this appearance.
			st.confirmed = label
			st.candidate, st.candidateRun = "", 0
			emit = &Event{Stream: st.id, Kind: "material-identified", Material: label, Confidence: conf}
		case label == st.confirmed:
			// Agreement: any half-built swap case collapses.
			st.candidate, st.candidateRun = "", 0
		case label == st.candidate:
			st.candidateRun++
			if st.candidateRun >= st.hub.cfg.ConfirmVerdicts {
				from := st.confirmed
				st.confirmed = label
				st.candidate, st.candidateRun = "", 0
				st.swaps++
				emit = &Event{Stream: st.id, Kind: "material-swapped", Material: label, From: from, Confidence: conf}
			}
		default:
			// A new disagreeing material starts its own run.
			st.candidate, st.candidateRun = label, 1
		}
	}
	st.mu.Unlock()

	if emit != nil {
		st.hub.recordEvent(*emit)
	}
}

// markDown flags the stream as down and logs the failure once.
func (st *stream) markDown(err error) {
	st.mu.Lock()
	already := st.down
	st.down = true
	st.lastErr = err.Error()
	st.mu.Unlock()
	if !already {
		st.hub.recordEvent(Event{Stream: st.id, Kind: "stream-down", Detail: err.Error()})
	}
}

// addCollectStats folds one collection round's link-level damage report into
// the stream counters.
func (st *stream) addCollectStats(cs transport.CollectStats) {
	st.mu.Lock()
	st.reconnects += uint64(cs.Reconnects)
	st.dupes += uint64(cs.Duplicates)
	st.crcSkipped += uint64(cs.CRCSkipped)
	st.mu.Unlock()
}

// StreamState is one stream's row in the fleet snapshot.
type StreamState struct {
	ID    string `json:"id"`
	State string `json:"state"` // learning | quiet | target-present | down

	Confirmed      string  `json:"confirmed,omitempty"`
	LastMaterial   string  `json:"last_material,omitempty"`
	LastConfidence float64 `json:"last_confidence,omitempty"`
	Candidate      string  `json:"candidate,omitempty"`
	CandidateRun   int     `json:"candidate_run,omitempty"`

	Packets    uint64 `json:"packets"`
	Sessions   uint64 `json:"sessions"`
	Pending    int    `json:"pending"`
	Identified uint64 `json:"identified"`
	Shed       uint64 `json:"shed"`
	Failed     uint64 `json:"failed,omitempty"`
	LowConf    uint64 `json:"low_confidence,omitempty"`
	Swaps      uint64 `json:"swaps,omitempty"`
	Degenerate uint64 `json:"degenerate,omitempty"`
	Rebaselines uint64 `json:"rebaselines,omitempty"`
	Reconnects uint64 `json:"reconnects,omitempty"`
	Duplicates uint64 `json:"duplicates,omitempty"`
	CRCSkipped uint64 `json:"crc_skipped,omitempty"`

	LastError string `json:"last_error,omitempty"`
}

// snapshot captures the stream's externally visible state under st.mu (the
// segmenter is mu-guarded too — ingest feeds it under the same lock).
func (st *stream) snapshot() StreamState {
	st.mu.Lock()
	s := StreamState{
		ID:             st.id,
		Confirmed:      st.confirmed,
		LastMaterial:   st.lastMaterial,
		LastConfidence: st.lastConf,
		Candidate:      st.candidate,
		CandidateRun:   st.candidateRun,
		Packets:        st.packets,
		Sessions:       st.sessions,
		Pending:        st.pendLen,
		Identified:     st.identified,
		Shed:           st.shed,
		Failed:         st.failed,
		LowConf:        st.lowConf,
		Swaps:          st.swaps,
		Reconnects:     st.reconnects,
		Duplicates:     st.dupes,
		CRCSkipped:     st.crcSkipped,
		LastError:      st.lastErr,
	}
	s.Degenerate = uint64(st.sg.Degenerate())
	s.Rebaselines = uint64(st.sg.Rebaselines())
	switch {
	case st.down:
		s.State = "down"
	case !st.sg.Ready():
		s.State = "learning"
	case st.sg.TargetPresent():
		s.State = "target-present"
	default:
		s.State = "quiet"
	}
	st.mu.Unlock()
	return s
}
