package monitorhub

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/faults"
	"repro/internal/material"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// loopSource replays a packet template forever, stamping every emission
// with a fresh sequence number from a counter shared across connections —
// a live NIC's monotonic stream, so collector dedupe never eats a replay.
type loopSource struct {
	pkts []csi.Packet
	next int
	seq  *atomic.Uint32
}

func (ls *loopSource) Next() (csi.Packet, error) {
	pkt := ls.pkts[ls.next]
	ls.next = (ls.next + 1) % len(ls.pkts)
	pkt.Seq = ls.seq.Add(1)
	return pkt, nil
}

func chaosServer(t *testing.T, addr string, pkts []csi.Packet, seq *atomic.Uint32, prof faults.Profile, seed int64) *transport.Server {
	t.Helper()
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:    addr,
		NumAnt:  pkts[0].CSI.NumAntennas(),
		Carrier: 5.32e9,
		// ~1 kHz emission: fast enough to converge in seconds, slow enough
		// that three flooding servers don't starve the race detector.
		Interval: time.Millisecond,
		NewSource: func() (transport.PacketSource, error) {
			return &loopSource{pkts: pkts, seq: seq}, nil
		},
		WrapConn: func(c net.Conn) (net.Conn, error) {
			return faults.WrapConn(c, prof, seed)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestChaosHubSurvivesFaultsAndRestart is the hub's resilience acceptance
// test: three TCP streams served through fault-injecting listeners
// (corrupting, stalling, spontaneously disconnecting), one server killed
// mid-run and restarted on the same address. The fleet must identify every
// stream's liquid, flag the killed stream down and recover it, and the hub
// must drain with zero leaked goroutines.
func TestChaosHubSurvivesFaultsAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos end-to-end test")
	}
	defer testutil.LeakCheck(t, 3)()

	cfg := testConfig(t)
	cfg.EventLog = 1024
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// One endless quiet→target→quiet loop per liquid; appearance/removal
	// cycles repeat every ~240 packets, so sessions keep coming.
	streams := []struct {
		id     string
		liquid string
		prof   faults.Profile
	}{
		{"line-honey", material.Honey, faults.Profile{Name: "corrupt", CorruptProb: 0.01}},
		{"line-water", material.PureWater, faults.Profile{Name: "stall", StallProb: 0.02, StallDuration: 5 * time.Millisecond}},
		{"line-soy", material.Soy, faults.Profile{Name: "flaky", DisconnectProb: 0.002}},
	}
	servers := make([]*transport.Server, len(streams))
	seqs := make([]*atomic.Uint32, len(streams))
	templates := make([][]csi.Packet, len(streams))
	for i, sc := range streams {
		templates[i] = liquidStream(t, sc.liquid, 40, 160, int64(21+i))
		seqs[i] = new(atomic.Uint32)
		servers[i] = chaosServer(t, "127.0.0.1:0", templates[i], seqs[i], sc.prof, int64(100+i))
		defer func(i int) { _ = servers[i].Close() }(i)
		err := h.RegisterCollector(sc.id, transport.CollectorConfig{
			Addr:           servers[i].Addr().String(),
			MaxRetries:     3,
			InitialBackoff: 10 * time.Millisecond,
			MaxBackoff:     100 * time.Millisecond,
			ReadTimeout:    2 * time.Second,
			JitterSeed:     int64(31 + i),
		}, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
	}

	waitFor := func(what string, deadline time.Duration, ok func(FleetSnapshot) bool) FleetSnapshot {
		t.Helper()
		end := time.Now().Add(deadline)
		for {
			snap := h.Snapshot("", 0)
			if ok(snap) {
				return snap
			}
			if time.Now().After(end) {
				t.Fatalf("%s: never happened; fleet %+v", what, snap.Streams)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	confirmedAll := func(snap FleetSnapshot) bool {
		n := 0
		for _, s := range snap.Streams {
			for _, sc := range streams {
				if s.ID == sc.id && s.Confirmed == sc.liquid {
					n++
				}
			}
		}
		return n == len(streams)
	}

	waitFor("fleet convergence under faults", 60*time.Second, confirmedAll)

	// Kill the honey server mid-run: its stream must go down (and say so),
	// the other two must keep identifying.
	_ = servers[0].Close()
	waitFor("killed stream flagged down", 30*time.Second, func(snap FleetSnapshot) bool {
		for _, s := range snap.Streams {
			if s.ID == "line-honey" {
				return s.State == "down" && s.LastError != ""
			}
		}
		return false
	})

	// Restart on the same address; the hub's redial loop must reattach
	// with no operator action and re-confirm the liquid.
	servers[0] = chaosServer(t, servers[0].Addr().String(), templates[0], seqs[0], streams[0].prof, 200)
	waitFor("killed stream recovered", 60*time.Second, func(snap FleetSnapshot) bool {
		for _, s := range snap.Streams {
			if s.ID == "line-honey" {
				return s.State != "down" && s.Confirmed == material.Honey
			}
		}
		return false
	})

	// The event log must show the outage and the recovery.
	kinds := map[string]int{}
	for _, ev := range h.eventTail(0) {
		if ev.Stream == "line-honey" {
			kinds[ev.Kind]++
		}
	}
	if kinds["stream-down"] == 0 || kinds["stream-up"] == 0 {
		t.Fatalf("outage not in the event log: %v", kinds)
	}

	// The flaky stream's spontaneous disconnects must surface as
	// reconnects in its counters (the collector's own resilience at work).
	snap := h.Snapshot("line-soy", 0)
	if len(snap.Streams) != 1 || snap.Streams[0].Reconnects+snap.Streams[0].CRCSkipped == 0 {
		// Reconnect counts fold in only when a collection round ends, so
		// accept CRC skips as the visible fault evidence too.
		t.Logf("note: flaky stream shows no fault evidence yet: %+v", snap.Streams)
	}

	h.Close()

	// After drain nothing may still be pending anywhere.
	final := h.Snapshot("", 0)
	if final.Totals.Pending != 0 {
		t.Fatalf("%d sessions pending after drain", final.Totals.Pending)
	}
	if final.Totals.Identified == 0 {
		t.Fatal("fleet identified nothing")
	}
	if strings.TrimSpace(final.Streams[0].ID) == "" {
		t.Fatal("stream rows lost after close")
	}
}
