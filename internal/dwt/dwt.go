// Package dwt implements the discrete wavelet transform and the
// spatially-selective wavelet-correlation denoiser WiMi uses to remove
// impulse noise from CSI amplitude streams (paper Sec. III-C, Eqs. 8-13,
// following Xu et al., reference [24]).
//
// The transform is the periodized orthonormal filter-bank form: for even
// signal lengths no information is lost and reconstruction is exact to
// floating-point precision, which the property tests assert.
package dwt

import (
	"fmt"
	"math"
)

// Wavelet is an orthonormal wavelet defined by its decomposition low-pass
// filter. The high-pass filter is derived by the quadrature-mirror relation
// g[k] = (-1)^k · h[L-1-k].
type Wavelet struct {
	name string
	h    []float64 // decomposition low-pass
	g    []float64 // decomposition high-pass
}

// Predefined orthonormal wavelets. Coefficients are the standard Daubechies
// and Symlet values (sum = √2).
var (
	Haar = newWavelet("haar", []float64{
		math.Sqrt2 / 2, math.Sqrt2 / 2,
	})
	DB2 = newWavelet("db2", []float64{
		0.48296291314469025, 0.836516303737469,
		0.22414386804185735, -0.12940952255092145,
	})
	DB4 = newWavelet("db4", []float64{
		0.23037781330885523, 0.7148465705525415,
		0.6308807679295904, -0.02798376941698385,
		-0.18703481171888114, 0.030841381835986965,
		0.032883011666982945, -0.010597401784997278,
	})
	Sym4 = newWavelet("sym4", []float64{
		0.03222310060404270, -0.012603967262037833,
		-0.09921954357684722, 0.29785779560527736,
		0.8037387518059161, 0.49761866763201545,
		-0.02963552764599851, -0.07576571478927333,
	})
)

// ByName returns the predefined wavelet with the given name
// ("haar", "db2", "db4", "sym4") or an error for unknown names.
func ByName(name string) (*Wavelet, error) {
	switch name {
	case "haar", "db1":
		return Haar, nil
	case "db2":
		return DB2, nil
	case "db4":
		return DB4, nil
	case "sym4":
		return Sym4, nil
	default:
		return nil, fmt.Errorf("dwt: unknown wavelet %q", name)
	}
}

func newWavelet(name string, h []float64) *Wavelet {
	l := len(h)
	g := make([]float64, l)
	for k := 0; k < l; k++ {
		sign := 1.0
		if k%2 == 1 {
			sign = -1.0
		}
		g[k] = sign * h[l-1-k]
	}
	return &Wavelet{name: name, h: h, g: g}
}

// Name returns the wavelet's conventional name.
func (w *Wavelet) Name() string { return w.name }

// FilterLen returns the length of the wavelet's filters.
func (w *Wavelet) FilterLen() int { return len(w.h) }

// Forward computes one level of the periodized DWT, returning the
// approximation and detail coefficient vectors (each ceil(n/2) long). Odd
// length inputs are extended by repeating the final sample. An empty input
// yields empty outputs.
func (w *Wavelet) Forward(x []float64) (approx, detail []float64) {
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	if n%2 == 1 {
		x = append(append([]float64(nil), x...), x[n-1])
		n++
	}
	half := n / 2
	approx = make([]float64, half)
	detail = make([]float64, half)
	l := len(w.h)
	for k := 0; k < half; k++ {
		var a, d float64
		for m := 0; m < l; m++ {
			xi := x[(2*k+m)%n]
			a += w.h[m] * xi
			d += w.g[m] * xi
		}
		approx[k] = a
		detail[k] = d
	}
	return approx, detail
}

// Inverse reconstructs a signal from one level of periodized DWT
// coefficients. approx and detail must have equal lengths; the output has
// twice that length.
func (w *Wavelet) Inverse(approx, detail []float64) ([]float64, error) {
	if len(approx) != len(detail) {
		return nil, fmt.Errorf("dwt: coefficient length mismatch %d vs %d", len(approx), len(detail))
	}
	half := len(approx)
	if half == 0 {
		return nil, nil
	}
	n := 2 * half
	out := make([]float64, n)
	l := len(w.h)
	// Transpose of the (orthonormal) analysis operator.
	for k := 0; k < half; k++ {
		for m := 0; m < l; m++ {
			i := (2*k + m) % n
			out[i] += w.h[m]*approx[k] + w.g[m]*detail[k]
		}
	}
	return out, nil
}

// Decomposition holds a multi-level DWT: the final approximation plus the
// detail bands ordered finest (level 1) to coarsest.
type Decomposition struct {
	Wavelet *Wavelet
	Approx  []float64   // coarsest approximation
	Details [][]float64 // Details[0] is the finest scale (level 1)
	lengths []int       // input length at each level, for odd-length trimming
}

// MaxLevel returns the deepest decomposition level usable for a signal of
// length n with this wavelet: each level must keep the working signal at
// least as long as the filter.
func (w *Wavelet) MaxLevel(n int) int {
	level := 0
	for n >= 2*len(w.h) && n >= 2 {
		n = (n + 1) / 2
		level++
	}
	return level
}

// Decompose performs a level-deep multi-level DWT. level must be between 1
// and MaxLevel(len(x)); passing level <= 0 selects MaxLevel automatically.
func (w *Wavelet) Decompose(x []float64, level int) (*Decomposition, error) {
	maxL := w.MaxLevel(len(x))
	if level <= 0 {
		level = maxL
	}
	if maxL == 0 {
		return nil, fmt.Errorf("dwt: signal of length %d too short for %s", len(x), w.name)
	}
	if level > maxL {
		return nil, fmt.Errorf("dwt: level %d exceeds maximum %d for length %d", level, maxL, len(x))
	}
	dec := &Decomposition{Wavelet: w}
	cur := append([]float64(nil), x...)
	for i := 0; i < level; i++ {
		dec.lengths = append(dec.lengths, len(cur))
		a, d := w.Forward(cur)
		dec.Details = append(dec.Details, d)
		cur = a
	}
	dec.Approx = cur
	return dec, nil
}

// Reconstruct inverts the multi-level DWT, returning a signal with the
// original input length.
func (d *Decomposition) Reconstruct() ([]float64, error) {
	cur := append([]float64(nil), d.Approx...)
	for i := len(d.Details) - 1; i >= 0; i-- {
		next, err := d.Wavelet.Inverse(cur, d.Details[i])
		if err != nil {
			return nil, fmt.Errorf("dwt: reconstruct level %d: %w", i+1, err)
		}
		// Trim the padding added for odd-length inputs at this level.
		if i < len(d.lengths) && len(next) > d.lengths[i] {
			next = next[:d.lengths[i]]
		}
		cur = next
	}
	return cur, nil
}

// Levels returns the number of detail bands in the decomposition.
func (d *Decomposition) Levels() int { return len(d.Details) }
