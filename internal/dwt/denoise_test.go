package dwt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/mathx"
)

// makeImpulseSignal builds the paper's scenario: a smooth useful signal plus
// sparse impulse noise whose magnitude is comparable to the signal, plus a
// small Gaussian floor. Returns (clean, corrupted).
func makeImpulseSignal(rng *rand.Rand, n int, impulseRate, impulseMag, gaussSigma float64) (clean, dirty []float64) {
	clean = make([]float64, n)
	dirty = make([]float64, n)
	for i := range clean {
		t := float64(i)
		clean[i] = 10 + 2*math.Sin(t*0.05) + 0.8*math.Cos(t*0.11)
		dirty[i] = clean[i] + rng.NormFloat64()*gaussSigma
		if rng.Float64() < impulseRate {
			sign := 1.0
			if rng.Float64() < 0.5 {
				sign = -1
			}
			dirty[i] += sign * impulseMag * (0.7 + 0.6*rng.Float64())
		}
	}
	return clean, dirty
}

func TestCorrelationDenoiseImprovesSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clean, dirty := makeImpulseSignal(rng, 512, 0.05, 6, 0.15)
	out, err := CorrelationDenoise(dirty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(dirty) {
		t.Fatalf("output length %d, want %d", len(out), len(dirty))
	}
	before := dsp.SNRdB(clean, dirty)
	after := dsp.SNRdB(clean, out)
	if after <= before {
		t.Errorf("denoising did not improve SNR: before %.2f dB, after %.2f dB", before, after)
	}
	if after-before < 3 {
		t.Errorf("SNR gain only %.2f dB, want ≥ 3 dB", after-before)
	}
}

func TestCorrelationDenoisePreservesCleanSignal(t *testing.T) {
	// A smooth signal with no noise should survive nearly unchanged.
	n := 256
	clean := make([]float64, n)
	for i := range clean {
		clean[i] = 5 + math.Sin(float64(i)*0.04)
	}
	out, err := CorrelationDenoise(clean, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The periodized transform sees the wrap-around jump of a non-periodic
	// signal as an impulse at the boundary, so judge the interior strictly
	// and only bound the boundary error.
	var maxInterior, maxBoundary float64
	for i := range clean {
		e := math.Abs(out[i] - clean[i])
		if i >= 24 && i < n-24 {
			if e > maxInterior {
				maxInterior = e
			}
		} else if e > maxBoundary {
			maxBoundary = e
		}
	}
	if maxInterior > 0.01 {
		t.Errorf("interior distorted by %v, want < 0.01", maxInterior)
	}
	if maxBoundary > 0.6 {
		t.Errorf("boundary distorted by %v, want < 0.6", maxBoundary)
	}
}

func TestCorrelationDenoiseShortSignalPassthrough(t *testing.T) {
	x := []float64{1, 2, 3}
	out, err := CorrelationDenoise(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if out[i] != x[i] {
			t.Errorf("short signal should pass through unchanged, got %v", out)
		}
	}
	// And it must be a copy, not an alias.
	out[0] = 99
	if x[0] == 99 {
		t.Error("passthrough aliased the input")
	}
}

func TestCorrelationDenoiseDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, dirty := makeImpulseSignal(rng, 128, 0.1, 5, 0.1)
	orig := append([]float64(nil), dirty...)
	if _, err := CorrelationDenoise(dirty, nil); err != nil {
		t.Fatal(err)
	}
	for i := range dirty {
		if dirty[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestCorrelationDenoiseAllWavelets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	clean, dirty := makeImpulseSignal(rng, 256, 0.06, 5, 0.1)
	for _, w := range allWavelets() {
		t.Run(w.Name(), func(t *testing.T) {
			out, err := CorrelationDenoise(dirty, &DenoiseConfig{Wavelet: w})
			if err != nil {
				t.Fatal(err)
			}
			before := dsp.SNRdB(clean, dirty)
			after := dsp.SNRdB(clean, out)
			if after <= before {
				t.Errorf("%s: SNR before %.2f, after %.2f", w.Name(), before, after)
			}
		})
	}
}

func TestCorrelationDenoiseConfigDefaults(t *testing.T) {
	c := (&DenoiseConfig{}).withDefaults()
	if c.Wavelet != DB4 || c.MaxIterations != 20 {
		t.Errorf("defaults = %+v", c)
	}
	var nilCfg *DenoiseConfig
	c = nilCfg.withDefaults()
	if c.Wavelet != DB4 {
		t.Error("nil config should take defaults")
	}
}

func TestUniversalThresholdDenoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 512
	clean := make([]float64, n)
	dirty := make([]float64, n)
	for i := range clean {
		clean[i] = 3 * math.Sin(float64(i)*0.03)
		dirty[i] = clean[i] + rng.NormFloat64()*0.5
	}
	out, err := UniversalThresholdDenoise(dirty, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := dsp.SNRdB(clean, dirty)
	after := dsp.SNRdB(clean, out)
	if after <= before {
		t.Errorf("universal threshold did not improve Gaussian SNR: %.2f → %.2f dB", before, after)
	}
}

func TestUniversalThresholdShortPassthrough(t *testing.T) {
	x := []float64{1, 2}
	out, err := UniversalThresholdDenoise(x, nil, 0)
	if err != nil || len(out) != 2 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestCorrelationDenoiseRemovesIsolatedImpulses(t *testing.T) {
	// Constant signal with a handful of large spikes: after denoising the
	// spike positions must be pulled most of the way back to the baseline.
	n := 256
	dirty := make([]float64, n)
	for i := range dirty {
		dirty[i] = 10
	}
	// Varied magnitudes — real impulse noise is "irregular" (Sec. II-C);
	// identical spikes are a degenerate exact-tie case for Eq. 13.
	spikes := map[int]float64{40: 25, 100: 22, 170: 28, 220: 24}
	for s, v := range spikes {
		dirty[s] = v
	}
	out, err := CorrelationDenoise(dirty, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := range spikes {
		if math.Abs(out[s]-10) > math.Abs(dirty[s]-10)/2 {
			t.Errorf("spike at %d only reduced to %v (baseline 10)", s, out[s])
		}
	}
}

func TestCorrelationDenoiseVsSpikeDensity(t *testing.T) {
	// The method should still help at the paper's "irregular, instantaneous"
	// impulse densities (a few percent); verify a mid and a low density.
	for _, rate := range []float64{0.02, 0.08} {
		rng := rand.New(rand.NewSource(5))
		clean, dirty := makeImpulseSignal(rng, 512, rate, 6, 0.1)
		out, err := CorrelationDenoise(dirty, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gain := dsp.SNRdB(clean, out) - dsp.SNRdB(clean, dirty); gain <= 0 {
			t.Errorf("rate %.2f: SNR gain %.2f dB, want > 0", rate, gain)
		}
	}
}

func TestDenoiseResidualVariance(t *testing.T) {
	// Paper Fig. 7 criterion: residual fluctuation after the proposed method
	// should be far below the raw fluctuation.
	rng := rand.New(rand.NewSource(6))
	_, dirty := makeImpulseSignal(rng, 512, 0.05, 6, 0.15)
	out, err := CorrelationDenoise(dirty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vr, vo := mathx.Variance(dirty), mathx.Variance(out); vo >= vr {
		t.Errorf("variance not reduced: %v → %v", vr, vo)
	}
}

func BenchmarkCorrelationDenoise512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	_, dirty := makeImpulseSignal(rng, 512, 0.05, 6, 0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CorrelationDenoise(dirty, nil); err != nil {
			b.Fatal(err)
		}
	}
}
