package dwt

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mathx"
)

// Workspace owns the scratch buffers of one wavelet-correlation denoise
// pass — the per-level approximation/detail vectors, the odd-length pad,
// the adjacent-band and correlation scratch and the reconstruction
// ping-pong buffers — so repeated Denoise calls reuse one set of
// allocations instead of rebuilding them level by level.
//
// A Workspace is NOT safe for concurrent use; keep one per goroutine or go
// through CorrelationDenoise, which draws from a shared pool.
type Workspace struct {
	approxes [][]float64 // approximation after each level
	details  [][]float64 // detail band of each level (finest first)
	lengths  []int       // input length at each level, for odd-length trimming
	pad      []float64   // even-length padded copy of an odd working signal
	adj      []float64   // adjacent band resampled onto the current grid
	corr     []float64   // cross-scale correlation scratch
	mad      []float64   // scratch for the per-level MAD noise estimate
	rec      [2][]float64
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// growFloats returns buf resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// Denoise runs the spatially-selective wavelet-correlation denoiser (paper
// Sec. III-C, Eqs. 8-13) on x using the workspace's buffers. The returned
// slice is freshly allocated (the caller keeps it); everything intermediate
// is reused across calls. The input is not mutated. Results are identical
// to CorrelationDenoise.
func (ws *Workspace) Denoise(x []float64, cfg *DenoiseConfig) ([]float64, error) {
	return ws.DenoiseInto(nil, x, cfg)
}

// DenoiseInto is Denoise writing the result into dst (grown as needed and
// returned re-sliced to len(x)), so steady-state callers reuse the output
// buffer too and a whole denoise pass allocates nothing. The values are
// identical to Denoise; dst may be nil.
func (ws *Workspace) DenoiseInto(dst, x []float64, cfg *DenoiseConfig) ([]float64, error) {
	dst = growFloats(dst, len(x))
	c := cfg.withDefaults()
	maxLevel := c.Wavelet.MaxLevel(len(x))
	if maxLevel == 0 {
		copy(dst, x)
		return dst, nil
	}
	level := c.Level
	if level == 0 {
		level = maxLevel
		if level > 3 {
			level = 3
		}
	}
	if level > maxLevel {
		return nil, fmt.Errorf("dwt: denoise: level %d exceeds maximum %d for length %d", level, maxLevel, len(x))
	}
	ws.decompose(c.Wavelet, x, level)
	for l := 0; l < level; l++ {
		adj := ws.adjacent(l, level)
		var sigma float64
		_, sigma, ws.mad = mathx.MedianAndMADStdDevBuf(ws.details[l], ws.mad)
		ws.suppress(ws.details[l], adj, sigma, c.MaxIterations)
	}
	rec, err := ws.reconstructInto(c.Wavelet, level)
	if err != nil {
		return nil, err
	}
	copy(dst, rec)
	return dst, nil
}

// decompose fills ws.approxes/details/lengths with a level-deep periodized
// DWT of x, reusing buffers. Matches Wavelet.Decompose numerically.
func (ws *Workspace) decompose(w *Wavelet, x []float64, level int) {
	for len(ws.approxes) < level {
		ws.approxes = append(ws.approxes, nil)
		ws.details = append(ws.details, nil)
	}
	ws.lengths = ws.lengths[:0]
	cur := x
	for i := 0; i < level; i++ {
		n := len(cur)
		ws.lengths = append(ws.lengths, n)
		if n%2 == 1 {
			ws.pad = growFloats(ws.pad, n+1)
			copy(ws.pad, cur)
			ws.pad[n] = cur[n-1]
			cur = ws.pad
			n++
		}
		half := n / 2
		ws.approxes[i] = growFloats(ws.approxes[i], half)
		ws.details[i] = growFloats(ws.details[i], half)
		forwardInto(w, cur, ws.approxes[i], ws.details[i])
		cur = ws.approxes[i]
	}
}

// forwardInto is Wavelet.Forward with caller-provided outputs; x must have
// even length and approx/detail length len(x)/2.
func forwardInto(w *Wavelet, x, approx, detail []float64) {
	n := len(x)
	half := n / 2
	l := len(w.h)
	// Only the last few output samples wrap around the periodic boundary;
	// everything before them indexes x directly, skipping the per-tap modulo.
	direct := (n - l + 2) / 2
	if direct < 0 {
		direct = 0
	}
	if direct > half {
		direct = half
	}
	for k := 0; k < direct; k++ {
		var a, d float64
		win := x[2*k : 2*k+l]
		for m, xi := range win {
			a += w.h[m] * xi
			d += w.g[m] * xi
		}
		approx[k] = a
		detail[k] = d
	}
	for k := direct; k < half; k++ {
		var a, d float64
		for m := 0; m < l; m++ {
			xi := x[(2*k+m)%n]
			a += w.h[m] * xi
			d += w.g[m] * xi
		}
		approx[k] = a
		detail[k] = d
	}
}

// adjacent resamples the band adjacent in scale to detail band l onto band
// l's index grid (same selection rules as the one-shot denoiser: coarser
// neighbour preferred, coarsest falls back to finer, single level to the
// approximation).
func (ws *Workspace) adjacent(l, level int) []float64 {
	n := len(ws.details[l])
	ws.adj = growFloats(ws.adj, n)
	out := ws.adj
	switch {
	case l+1 < level:
		coarser := ws.details[l+1]
		for m := 0; m < n; m++ {
			j := m / 2
			if j >= len(coarser) {
				j = len(coarser) - 1
			}
			out[m] = coarser[j]
		}
	case l > 0:
		finer := ws.details[l-1]
		for m := 0; m < n; m++ {
			a, b := 0.0, 0.0
			if 2*m < len(finer) {
				a = finer[2*m]
			}
			if 2*m+1 < len(finer) {
				b = finer[2*m+1]
			}
			// Keep the stronger of the two children: an impulse lands in
			// only one of them.
			if math.Abs(a) >= math.Abs(b) {
				out[m] = a
			} else {
				out[m] = b
			}
		}
	default:
		approx := ws.approxes[level-1]
		for m := 0; m < n; m++ {
			j := m
			if j >= len(approx) {
				j = len(approx) - 1
			}
			out[m] = approx[j]
		}
	}
	return out
}

// suppress applies Eq. 13 iteratively to one detail band in place: zero the
// coefficients whose normalised cross-scale correlation strictly dominates
// their own magnitude (impulse noise) until the residual band power reaches
// the noise floor or no coefficient qualifies.
func (ws *Workspace) suppress(band, adj []float64, sigma float64, maxIter int) {
	n := len(band)
	ws.corr = growFloats(ws.corr, n)
	corr := ws.corr
	noisePower := float64(n) * sigma * sigma
	for iter := 0; iter < maxIter; iter++ {
		pw := sumSquares(band)
		if pw <= noisePower || pw == 0 {
			break
		}
		// Corr_l = W_l ⊙ W_{l+1} (Eq. 11).
		for m := 0; m < n; m++ {
			corr[m] = band[m] * adj[m]
		}
		pcorr := sumSquares(corr)
		if pcorr == 0 {
			break
		}
		// NCorr_l = Corr_l · sqrt(PW_l / PCorr_l) (Eq. 12).
		scale := math.Sqrt(pw / pcorr)
		suppressed := false
		for m := 0; m < n; m++ {
			if band[m] == 0 {
				continue
			}
			ncorr := corr[m] * scale
			// Eq. 13: impulse-dominated where |NCorr| > |w| (strictly, with
			// a relative guard so exact ties — e.g. a constant-background
			// band — are kept).
			if math.Abs(ncorr) > math.Abs(band[m])*(1+1e-9) {
				band[m] = 0
				suppressed = true
			}
		}
		if !suppressed {
			break
		}
	}
}

// reconstructInto inverts the workspace decomposition, ping-ponging between
// two reusable buffers, and returns a view of the final one — valid only
// until the workspace's next use, so callers copy it out.
func (ws *Workspace) reconstructInto(w *Wavelet, level int) ([]float64, error) {
	cur := ws.approxes[level-1]
	buf := 0
	for i := level - 1; i >= 0; i-- {
		if len(cur) != len(ws.details[i]) {
			return nil, fmt.Errorf("dwt: reconstruct level %d: coefficient length mismatch %d vs %d", i+1, len(cur), len(ws.details[i]))
		}
		n := 2 * len(cur)
		ws.rec[buf] = growFloats(ws.rec[buf], n)
		inverseInto(w, cur, ws.details[i], ws.rec[buf])
		next := ws.rec[buf]
		// Trim the padding added for odd-length inputs at this level.
		if len(next) > ws.lengths[i] {
			next = next[:ws.lengths[i]]
		}
		cur = next
		buf ^= 1
	}
	return cur, nil
}

// inverseInto is Wavelet.Inverse with a caller-provided output of length
// 2·len(approx).
func inverseInto(w *Wavelet, approx, detail, out []float64) {
	n := len(out)
	for i := range out {
		out[i] = 0
	}
	l := len(w.h)
	// Transpose of the (orthonormal) analysis operator. As in forwardInto,
	// only the tail coefficients wrap, so the bulk of the scatter runs with
	// direct indexing; the k-order (and so the accumulation order into each
	// out[i]) is unchanged.
	direct := (n - l + 2) / 2
	if direct < 0 {
		direct = 0
	}
	if direct > len(approx) {
		direct = len(approx)
	}
	for k := 0; k < direct; k++ {
		a, d := approx[k], detail[k]
		win := out[2*k : 2*k+l]
		for m := range win {
			win[m] += w.h[m]*a + w.g[m]*d
		}
	}
	for k := direct; k < len(approx); k++ {
		a, d := approx[k], detail[k]
		for m := 0; m < l; m++ {
			i := (2*k + m) % n
			out[i] += w.h[m]*a + w.g[m]*d
		}
	}
}

// wsPool backs CorrelationDenoise: the denoiser runs on every
// (pair, subcarrier, antenna) series and, since the evaluation harness
// fans captures out across workers, concurrently — each call borrows a
// private workspace.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}
