package dwt

import (
	"math"
	"math/rand"
	"testing"
)

func noisySignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/25) + 0.1*rng.NormFloat64()
		if rng.Float64() < 0.03 {
			x[i] += 5 * rng.NormFloat64()
		}
	}
	return x
}

// TestWorkspaceReuseMatchesFresh runs one workspace across signals of
// different lengths, wavelets and depths and checks every result against a
// brand-new workspace: stale buffer contents from a previous call must
// never leak into a later one.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	shared := NewWorkspace()
	cases := []struct {
		n    int
		cfg  DenoiseConfig
		seed int64
	}{
		{300, DenoiseConfig{Wavelet: DB4}, 1},
		{64, DenoiseConfig{Wavelet: Haar, Level: 2}, 2},
		{301, DenoiseConfig{Wavelet: Sym4}, 3}, // odd length exercises the pad
		{128, DenoiseConfig{Wavelet: DB2, Level: 1}, 4},
		{300, DenoiseConfig{Wavelet: DB4}, 5},
	}
	for _, tc := range cases {
		x := noisySignal(tc.n, tc.seed)
		got, err := shared.Denoise(x, &tc.cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		want, err := NewWorkspace().Denoise(x, &tc.cfg)
		if err != nil {
			t.Fatalf("n=%d fresh: %v", tc.n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d vs fresh %d", tc.n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: sample %d = %v, fresh gives %v", tc.n, i, got[i], want[i])
			}
		}
	}
}

// TestWorkspaceMatchesCorrelationDenoise pins the pooled entry point to the
// explicit-workspace one.
func TestWorkspaceMatchesCorrelationDenoise(t *testing.T) {
	x := noisySignal(257, 9)
	cfg := &DenoiseConfig{Wavelet: DB4}
	a, err := CorrelationDenoise(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkspace().Denoise(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWorkspaceDoesNotMutateInput(t *testing.T) {
	x := noisySignal(301, 11)
	orig := append([]float64(nil), x...)
	if _, err := NewWorkspace().Denoise(x, nil); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("input sample %d mutated", i)
		}
	}
}

func BenchmarkCorrelationDenoise(b *testing.B) {
	x := noisySignal(300, 1)
	cfg := &DenoiseConfig{Wavelet: DB4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CorrelationDenoise(x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
