package dwt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func allWavelets() []*Wavelet {
	return []*Wavelet{Haar, DB2, DB4, Sym4}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"haar", "db1", "db2", "db4", "sym4"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q) error: %v", name, err)
		}
	}
	if _, err := ByName("db17"); err == nil {
		t.Error("unknown wavelet should error")
	}
}

func TestFilterOrthonormality(t *testing.T) {
	// Every wavelet's low-pass filter must satisfy Σh² = 1, Σh = √2 and the
	// even-shift orthogonality Σ h[k]h[k+2m] = 0 — the conditions that make
	// the periodized transform an orthonormal operator.
	for _, w := range allWavelets() {
		t.Run(w.Name(), func(t *testing.T) {
			var sum, sumSq float64
			for _, h := range w.h {
				sum += h
				sumSq += h * h
			}
			if !mathx.AlmostEqual(sum, math.Sqrt2, 1e-9) {
				t.Errorf("Σh = %v, want √2", sum)
			}
			if !mathx.AlmostEqual(sumSq, 1, 1e-9) {
				t.Errorf("Σh² = %v, want 1", sumSq)
			}
			for m := 1; 2*m < len(w.h); m++ {
				var dot float64
				for k := 0; k+2*m < len(w.h); k++ {
					dot += w.h[k] * w.h[k+2*m]
				}
				if math.Abs(dot) > 1e-9 {
					t.Errorf("shift-%d autocorrelation = %v, want 0", 2*m, dot)
				}
			}
			// High-pass sums to zero (vanishing moment 0).
			var gSum float64
			for _, g := range w.g {
				gSum += g
			}
			if math.Abs(gSum) > 1e-9 {
				t.Errorf("Σg = %v, want 0", gSum)
			}
		})
	}
}

func TestForwardInverseSingleLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range allWavelets() {
		for _, n := range []int{16, 32, 64, 100} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			a, d := w.Forward(x)
			if len(a) != n/2 || len(d) != n/2 {
				t.Fatalf("%s n=%d: coefficient lengths %d/%d", w.Name(), n, len(a), len(d))
			}
			back, err := w.Inverse(a, d)
			if err != nil {
				t.Fatalf("Inverse: %v", err)
			}
			for i := range x {
				if !mathx.AlmostEqual(back[i], x[i], 1e-9) {
					t.Fatalf("%s n=%d: reconstruction differs at %d: %v vs %v",
						w.Name(), n, i, back[i], x[i])
				}
			}
		}
	}
}

func TestForwardOddLength(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	a, d := Haar.Forward(x)
	if len(a) != 3 || len(d) != 3 {
		t.Fatalf("odd-length coefficients: %d/%d, want 3/3", len(a), len(d))
	}
}

func TestForwardEmpty(t *testing.T) {
	a, d := DB4.Forward(nil)
	if a != nil || d != nil {
		t.Error("Forward(nil) should be nil, nil")
	}
}

func TestInverseLengthMismatch(t *testing.T) {
	if _, err := Haar.Inverse([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestForwardEnergyPreservation(t *testing.T) {
	// Orthonormal transform preserves energy (even lengths only).
	rng := rand.New(rand.NewSource(2))
	for _, w := range allWavelets() {
		x := make([]float64, 128)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a, d := w.Forward(x)
		ex := sumSquares(x)
		ec := sumSquares(a) + sumSquares(d)
		if !mathx.AlmostEqual(ex, ec, 1e-9) {
			t.Errorf("%s: energy %v vs %v", w.Name(), ex, ec)
		}
	}
}

func TestHaarKnownValues(t *testing.T) {
	// Haar of [1,1,2,2]: approx = [√2, 2√2], detail = [0, 0].
	a, d := Haar.Forward([]float64{1, 1, 2, 2})
	if !mathx.AlmostEqual(a[0], math.Sqrt2, 1e-12) || !mathx.AlmostEqual(a[1], 2*math.Sqrt2, 1e-12) {
		t.Errorf("approx = %v", a)
	}
	if math.Abs(d[0]) > 1e-12 || math.Abs(d[1]) > 1e-12 {
		t.Errorf("detail = %v, want zeros", d)
	}
}

func TestMaxLevel(t *testing.T) {
	tests := []struct {
		w    *Wavelet
		n    int
		want int
	}{
		{Haar, 1, 0},
		{Haar, 4, 1}, // 4→2, stop (2 < 2·2? no: 2*len(h)=4, 2<4)
		{Haar, 8, 2}, // 8→4→2
		{DB4, 15, 0}, // needs ≥16
		{DB4, 16, 1},
		{DB4, 64, 3}, // 64→32→16→8(stop)
	}
	for _, tt := range tests {
		if got := tt.w.MaxLevel(tt.n); got != tt.want {
			t.Errorf("%s MaxLevel(%d) = %d, want %d", tt.w.Name(), tt.n, got, tt.want)
		}
	}
}

func TestDecomposeReconstructMultiLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, w := range allWavelets() {
		for _, n := range []int{64, 128, 200, 256} {
			x := make([]float64, n)
			for i := range x {
				x[i] = math.Sin(float64(i)*0.2) + rng.NormFloat64()*0.1
			}
			dec, err := w.Decompose(x, 0)
			if err != nil {
				t.Fatalf("%s n=%d Decompose: %v", w.Name(), n, err)
			}
			back, err := dec.Reconstruct()
			if err != nil {
				t.Fatalf("Reconstruct: %v", err)
			}
			if len(back) != n {
				t.Fatalf("%s n=%d: reconstructed length %d", w.Name(), n, len(back))
			}
			for i := range x {
				if !mathx.AlmostEqual(back[i], x[i], 1e-8) {
					t.Fatalf("%s n=%d: mismatch at %d: %v vs %v", w.Name(), n, i, back[i], x[i])
				}
			}
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := DB4.Decompose([]float64{1, 2, 3}, 1); err == nil {
		t.Error("too-short signal should error")
	}
	x := make([]float64, 32)
	if _, err := DB4.Decompose(x, 10); err == nil {
		t.Error("excessive level should error")
	}
}

// Property: multi-level round trip is exact for random even-length signals.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64, rawN uint8) bool {
		n := 32 + 2*(int(rawN)%100) // even, 32..230
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		w := allWavelets()[rng.Intn(4)]
		dec, err := w.Decompose(x, 0)
		if err != nil {
			return false
		}
		back, err := dec.Reconstruct()
		if err != nil || len(back) != n {
			return false
		}
		for i := range x {
			if !mathx.AlmostEqual(back[i], x[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the transform is linear.
func TestDWTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 64
		a := make([]float64, n)
		b := make([]float64, n)
		sum := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			sum[i] = 2*a[i] - 3*b[i]
		}
		wa1, wd1 := DB2.Forward(a)
		wb1, wd2 := DB2.Forward(b)
		ws1, wsd := DB2.Forward(sum)
		for i := range ws1 {
			if !mathx.AlmostEqual(ws1[i], 2*wa1[i]-3*wb1[i], 1e-9) {
				t.Fatal("approx coefficients not linear")
			}
			if !mathx.AlmostEqual(wsd[i], 2*wd1[i]-3*wd2[i], 1e-9) {
				t.Fatal("detail coefficients not linear")
			}
		}
	}
}

func TestDecompositionLevels(t *testing.T) {
	x := make([]float64, 64)
	dec, err := Haar.Decompose(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Levels() != 3 {
		t.Errorf("Levels = %d, want 3", dec.Levels())
	}
	if len(dec.Approx) != 8 {
		t.Errorf("coarsest approx length = %d, want 8", len(dec.Approx))
	}
}
