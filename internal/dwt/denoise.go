package dwt

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// DenoiseConfig parameterises the spatially-selective wavelet-correlation
// denoiser of paper Sec. III-C.
type DenoiseConfig struct {
	// Wavelet is the mother wavelet; the paper does not name one, DB4 is the
	// default (and the ablation bench sweeps the alternatives).
	Wavelet *Wavelet
	// Level is the decomposition depth. Impulse noise lives at fine scales,
	// so <= 0 selects min(3, MaxLevel) — deep enough to catch impulses
	// without touching the smooth-signal scales.
	Level int
	// MaxIterations bounds the suppress-and-recompute loop per scale
	// ("repeat the aforementioned process until PW is below the noise
	// threshold"). Zero selects the default of 20.
	MaxIterations int
}

func (c *DenoiseConfig) withDefaults() DenoiseConfig {
	out := DenoiseConfig{Wavelet: DB4, Level: 0, MaxIterations: 20}
	if c == nil {
		return out
	}
	if c.Wavelet != nil {
		out.Wavelet = c.Wavelet
	}
	if c.Level > 0 {
		out.Level = c.Level
	}
	if c.MaxIterations > 0 {
		out.MaxIterations = c.MaxIterations
	}
	return out
}

// CorrelationDenoise removes impulse noise from x using the paper's method:
// multiply wavelet detail coefficients of adjacent scales (Eq. 11),
// normalise to the band power (Eq. 12), and apply Eq. 13 — a coefficient
// whose normalised cross-scale correlation exceeds its own magnitude is
// impulse-dominated (impulses, unlike the smooth useful signal, concentrate
// in detail bands and propagate across scales at the same location) and is
// zeroed, while the rest are kept. The process repeats until the band power
// falls to the robust-median noise floor [24]. The denoised signal is
// rebuilt with the inverse transform.
//
// The input is not mutated. Signals too short to decompose are returned
// unchanged (copied): there is nothing to denoise at that length.
func CorrelationDenoise(x []float64, cfg *DenoiseConfig) ([]float64, error) {
	c := cfg.withDefaults()
	maxLevel := c.Wavelet.MaxLevel(len(x))
	if maxLevel == 0 {
		return append([]float64(nil), x...), nil
	}
	level := c.Level
	if level == 0 {
		level = maxLevel
		if level > 3 {
			level = 3
		}
	}
	dec, err := c.Wavelet.Decompose(x, level)
	if err != nil {
		return nil, fmt.Errorf("dwt: denoise: %w", err)
	}
	// Robust per-band noise scale (reference [24]): sigma_l =
	// MAD(W_l)/0.6745. MAD ignores sparse impulses, so an impulse-inflated
	// band keeps a low threshold (and gets filtered), while a band carrying
	// dense genuine signal estimates a threshold at or above its own power
	// (and is left alone).
	for l := 0; l < dec.Levels(); l++ {
		adj := adjacentBand(dec, l)
		sigma := mathx.MADStdDev(dec.Details[l])
		dec.Details[l] = suppressCorrelated(dec.Details[l], adj, sigma, c.MaxIterations)
	}
	return dec.Reconstruct()
}

// adjacentBand returns the detail band adjacent in scale to band l, resampled
// onto band l's index grid. The coarser neighbour is preferred; the coarsest
// band falls back to its finer neighbour, and a single-level decomposition
// falls back to the approximation band.
func adjacentBand(dec *Decomposition, l int) []float64 {
	n := len(dec.Details[l])
	out := make([]float64, n)
	switch {
	case l+1 < dec.Levels():
		coarser := dec.Details[l+1]
		for m := 0; m < n; m++ {
			j := m / 2
			if j >= len(coarser) {
				j = len(coarser) - 1
			}
			out[m] = coarser[j]
		}
	case l > 0:
		finer := dec.Details[l-1]
		for m := 0; m < n; m++ {
			a, b := 0.0, 0.0
			if 2*m < len(finer) {
				a = finer[2*m]
			}
			if 2*m+1 < len(finer) {
				b = finer[2*m+1]
			}
			// Keep the stronger of the two children: an impulse lands in
			// only one of them.
			if math.Abs(a) >= math.Abs(b) {
				out[m] = a
			} else {
				out[m] = b
			}
		}
	default:
		approx := dec.Approx
		for m := 0; m < n; m++ {
			j := m
			if j >= len(approx) {
				j = len(approx) - 1
			}
			out[m] = approx[j]
		}
	}
	return out
}

// suppressCorrelated applies Eq. 13 iteratively to one detail band: zero the
// coefficients whose normalised cross-scale correlation strictly dominates
// their own magnitude (impulse noise), largest first, until the residual
// band power reaches the noise floor or no coefficient qualifies.
func suppressCorrelated(band, adj []float64, sigma float64, maxIter int) []float64 {
	n := len(band)
	work := append([]float64(nil), band...)
	noisePower := float64(n) * sigma * sigma
	for iter := 0; iter < maxIter; iter++ {
		pw := sumSquares(work)
		if pw <= noisePower || pw == 0 {
			break
		}
		// Corr_l = W_l ⊙ W_{l+1} (Eq. 11).
		corr := make([]float64, n)
		for m := 0; m < n; m++ {
			corr[m] = work[m] * adj[m]
		}
		pcorr := sumSquares(corr)
		if pcorr == 0 {
			break
		}
		// NCorr_l = Corr_l · sqrt(PW_l / PCorr_l) (Eq. 12).
		scale := math.Sqrt(pw / pcorr)
		suppressed := false
		for m := 0; m < n; m++ {
			if work[m] == 0 {
				continue
			}
			ncorr := corr[m] * scale
			// Eq. 13: impulse-dominated where |NCorr| > |w| (strictly, with
			// a relative guard so exact ties — e.g. a constant-background
			// band — are kept).
			if math.Abs(ncorr) > math.Abs(work[m])*(1+1e-9) {
				work[m] = 0
				suppressed = true
			}
		}
		if !suppressed {
			break
		}
	}
	return work
}

func sumSquares(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}

// UniversalThresholdDenoise is the classic baseline: soft-threshold every
// detail coefficient at sigma·sqrt(2·ln n) (Donoho's universal threshold)
// and reconstruct. Used by the Fig. 7 ablation to contrast with the
// correlation method.
func UniversalThresholdDenoise(x []float64, w *Wavelet, level int) ([]float64, error) {
	if w == nil {
		w = DB4
	}
	maxLevel := w.MaxLevel(len(x))
	if maxLevel == 0 {
		return append([]float64(nil), x...), nil
	}
	if level <= 0 {
		level = maxLevel
		if level > 3 {
			level = 3
		}
	}
	dec, err := w.Decompose(x, level)
	if err != nil {
		return nil, fmt.Errorf("dwt: universal threshold: %w", err)
	}
	sigma := mathx.MADStdDev(dec.Details[0])
	thresh := sigma * math.Sqrt(2*math.Log(float64(len(x))))
	for _, d := range dec.Details {
		for i, v := range d {
			switch {
			case v > thresh:
				d[i] = v - thresh
			case v < -thresh:
				d[i] = v + thresh
			default:
				d[i] = 0
			}
		}
	}
	return dec.Reconstruct()
}
