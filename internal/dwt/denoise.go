package dwt

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// DenoiseConfig parameterises the spatially-selective wavelet-correlation
// denoiser of paper Sec. III-C.
type DenoiseConfig struct {
	// Wavelet is the mother wavelet; the paper does not name one, DB4 is the
	// default (and the ablation bench sweeps the alternatives).
	Wavelet *Wavelet
	// Level is the decomposition depth. Impulse noise lives at fine scales,
	// so <= 0 selects min(3, MaxLevel) — deep enough to catch impulses
	// without touching the smooth-signal scales.
	Level int
	// MaxIterations bounds the suppress-and-recompute loop per scale
	// ("repeat the aforementioned process until PW is below the noise
	// threshold"). Zero selects the default of 20.
	MaxIterations int
}

func (c *DenoiseConfig) withDefaults() DenoiseConfig {
	out := DenoiseConfig{Wavelet: DB4, Level: 0, MaxIterations: 20}
	if c == nil {
		return out
	}
	if c.Wavelet != nil {
		out.Wavelet = c.Wavelet
	}
	if c.Level > 0 {
		out.Level = c.Level
	}
	if c.MaxIterations > 0 {
		out.MaxIterations = c.MaxIterations
	}
	return out
}

// CorrelationDenoise removes impulse noise from x using the paper's method:
// multiply wavelet detail coefficients of adjacent scales (Eq. 11),
// normalise to the band power (Eq. 12), and apply Eq. 13 — a coefficient
// whose normalised cross-scale correlation exceeds its own magnitude is
// impulse-dominated (impulses, unlike the smooth useful signal, concentrate
// in detail bands and propagate across scales at the same location) and is
// zeroed, while the rest are kept. The process repeats until the band power
// falls to the robust-median noise floor [24]. The denoised signal is
// rebuilt with the inverse transform.
//
// The input is not mutated. Signals too short to decompose are returned
// unchanged (copied): there is nothing to denoise at that length.
//
// The robust per-band noise scale follows reference [24]: sigma_l =
// MAD(W_l)/0.6745. MAD ignores sparse impulses, so an impulse-inflated
// band keeps a low threshold (and gets filtered), while a band carrying
// dense genuine signal estimates a threshold at or above its own power
// (and is left alone).
//
// Safe for concurrent use: each call borrows a private Workspace from a
// shared pool, so the per-level buffers are reused across calls instead of
// reallocated.
func CorrelationDenoise(x []float64, cfg *DenoiseConfig) ([]float64, error) {
	ws := wsPool.Get().(*Workspace)
	out, err := ws.Denoise(x, cfg)
	wsPool.Put(ws)
	return out, err
}

func sumSquares(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}

// UniversalThresholdDenoise is the classic baseline: soft-threshold every
// detail coefficient at sigma·sqrt(2·ln n) (Donoho's universal threshold)
// and reconstruct. Used by the Fig. 7 ablation to contrast with the
// correlation method.
func UniversalThresholdDenoise(x []float64, w *Wavelet, level int) ([]float64, error) {
	if w == nil {
		w = DB4
	}
	maxLevel := w.MaxLevel(len(x))
	if maxLevel == 0 {
		return append([]float64(nil), x...), nil
	}
	if level <= 0 {
		level = maxLevel
		if level > 3 {
			level = 3
		}
	}
	dec, err := w.Decompose(x, level)
	if err != nil {
		return nil, fmt.Errorf("dwt: universal threshold: %w", err)
	}
	sigma := mathx.MADStdDev(dec.Details[0])
	thresh := sigma * math.Sqrt(2*math.Log(float64(len(x))))
	for _, d := range dec.Details {
		for i, v := range d {
			switch {
			case v > thresh:
				d[i] = v - thresh
			case v < -thresh:
				d[i] = v + thresh
			default:
				d[i] = 0
			}
		}
	}
	return dec.Reconstruct()
}
