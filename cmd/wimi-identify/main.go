// wimi-identify runs the full WiMi pipeline on a recorded measurement
// session (a baseline + target .csitrace pair, e.g. from wimi-sim), trains
// an identifier on a simulated material database matching the measurement
// setup, and prints the identified material with the extracted features.
//
// Example:
//
//	wimi-identify -baseline /tmp/x.baseline.csitrace -target /tmp/x.target.csitrace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/csi"
	"repro/internal/propagation"
	"repro/internal/trace"
	"repro/wimi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-identify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wimi-identify", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "", "baseline .csitrace (empty container)")
		targetPath   = fs.String("target", "", "target .csitrace (liquid present)")
		env          = fs.String("env", "lab", "environment the trace was measured in")
		distance     = fs.Float64("distance", 2.0, "Tx-Rx distance of the measurement, metres")
		roomSeed     = fs.Int64("room-seed", 7, "room seed of the measurement")
		candidates   = fs.String("candidates", "", "comma-separated candidate liquids (default: the paper's ten)")
		trials       = fs.Int("trials", 12, "training trials per candidate")
		modelIn      = fs.String("model", "", "load a trained model instead of training")
		modelOut     = fs.String("model-out", "", "save the trained model to this path")
		verbose      = fs.Bool("v", false, "print extracted features")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" || *targetPath == "" {
		return fmt.Errorf("both -baseline and -target are required")
	}
	baseline, carrier, err := readTrace(*baselinePath)
	if err != nil {
		return err
	}
	target, _, err := readTrace(*targetPath)
	if err != nil {
		return err
	}
	session := &csi.Session{Carrier: carrier, Baseline: *baseline, Target: *target}
	if err := session.Validate(); err != nil {
		return fmt.Errorf("session: %w", err)
	}

	var id *wimi.Identifier
	if *modelIn != "" {
		f, err := os.Open(*modelIn)
		if err != nil {
			return err
		}
		id, err = wimi.LoadIdentifier(f)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", *modelIn, err)
		}
		fmt.Printf("loaded trained model from %s\n", *modelIn)
	} else {
		names := []string{
			wimi.Vinegar, wimi.Honey, wimi.Soy, wimi.Milk, wimi.Pepsi,
			wimi.Liquor, wimi.PureWater, wimi.Oil, wimi.Coke, wimi.SweetWater,
		}
		if *candidates != "" {
			names = strings.Split(*candidates, ",")
		}
		environment, err := propagation.EnvironmentByName(*env)
		if err != nil {
			return err
		}
		fmt.Printf("training identifier on %d candidates × %d trials (%s, %.1f m)...\n",
			len(names), *trials, *env, *distance)
		var sessions []*wimi.Session
		var labels []string
		for li, name := range names {
			sc := wimi.DefaultScenario()
			sc.Env = environment
			sc.LinkDistance = *distance
			sc.RoomSeed = *roomSeed
			m, err := wimi.Liquid(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			sc.Liquid = &m
			trialSet, err := wimi.SimulateTrials(sc, *trials, int64(li)*1_000_003+1)
			if err != nil {
				return err
			}
			for _, s := range trialSet {
				sessions = append(sessions, s)
				labels = append(labels, m.Name)
			}
		}
		id, err = wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
		if err != nil {
			return err
		}
		if *modelOut != "" {
			f, err := os.Create(*modelOut)
			if err != nil {
				return err
			}
			if err := wimi.SaveIdentifier(id, f); err != nil {
				_ = f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("saved trained model to %s\n", *modelOut)
		}
	}
	got, err := id.Identify(session)
	if err != nil {
		return err
	}
	fmt.Printf("identified material: %s\n", got)
	if *verbose {
		feats, err := wimi.ExtractFeatures(session, wimi.DefaultPipelineConfig())
		if err != nil {
			return err
		}
		fmt.Printf("good subcarriers: %v\n", feats.GoodSubcarriers)
		for _, pf := range feats.Pairs {
			fmt.Printf("pair %s: ΔΘ=%+.4f rad, ΔΨ=%.4f, γ=%d, Ω̄=%+.4f\n",
				pf.Pair, pf.DeltaTheta, pf.DeltaPsi, pf.Gamma, pf.Omega)
		}
	}
	return nil
}

func readTrace(path string) (*csi.Capture, float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer func() { _ = f.Close() }()
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	capture, err := r.ReadAll()
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return capture, r.Header().Carrier, nil
}
