package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/wimi"
)

// writeSession dumps a simulated session as a baseline/target trace pair.
func writeSession(t *testing.T, liquid string, seed int64) (baseline, target string) {
	t.Helper()
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(liquid)
	session, err := wimi.Simulate(sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	baseline = filepath.Join(dir, "b.csitrace")
	target = filepath.Join(dir, "t.csitrace")
	writeCapture := func(path string, isBaseline bool) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := trace.NewWriter(f, sc.NumAntennas, sc.Carrier)
		if err != nil {
			t.Fatal(err)
		}
		capture := &session.Target
		if isBaseline {
			capture = &session.Baseline
		}
		if err := w.WriteCapture(capture); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeCapture(baseline, true)
	writeCapture(target, false)
	return baseline, target
}

func TestRunIdentifyWithSmallCandidateSet(t *testing.T) {
	baseline, target := writeSession(t, wimi.Honey, 99)
	err := run([]string{
		"-baseline", baseline, "-target", target,
		"-candidates", "honey,pure-water,oil", "-trials", "6", "-v",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunModelSaveAndLoad(t *testing.T) {
	baseline, target := writeSession(t, wimi.Oil, 123)
	model := filepath.Join(t.TempDir(), "model.json")
	if err := run([]string{
		"-baseline", baseline, "-target", target,
		"-candidates", "honey,pure-water,oil", "-trials", "6",
		"-model-out", model,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	// Reuse without retraining.
	if err := run([]string{
		"-baseline", baseline, "-target", target, "-model", model,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing paths should error")
	}
	if err := run([]string{"-baseline", "/nope", "-target", "/nope"}); err == nil {
		t.Error("missing files should error")
	}
	baseline, target := writeSession(t, wimi.Milk, 5)
	if err := run([]string{
		"-baseline", baseline, "-target", target, "-env", "cave",
	}); err == nil {
		t.Error("unknown environment should error")
	}
	if err := run([]string{
		"-baseline", baseline, "-target", target, "-candidates", "plutonium", "-trials", "2",
	}); err == nil {
		t.Error("unknown candidate should error")
	}
	if err := run([]string{
		"-baseline", baseline, "-target", target, "-model", "/nope",
	}); err == nil {
		t.Error("missing model should error")
	}
}
