package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, ms(5)},
		{90, ms(9)},
		{99, ms(10)},
		{100, ms(10)},
		{1, ms(1)},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%.0f = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestMakeBodiesDistinctAndDeterministic(t *testing.T) {
	a, err := makeBodies(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := makeBodies(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Errorf("body %d differs across runs with the same seed", i)
		}
	}
	if string(a[0]) == string(a[1]) || string(a[1]) == string(a[2]) {
		t.Error("bodies are not distinct")
	}
}

// TestRunAgainstFakeCluster drives the whole harness against a stub
// identify endpoint: summary line parses, counters add up, bench JSON
// lands on disk.
func TestRunAgainstFakeCluster(t *testing.T) {
	var served, shed atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/identify" {
			http.NotFound(w, r)
			return
		}
		if served.Add(1)%5 == 0 {
			shed.Add(1)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"material":"water","omega":1,"confidence":0.9,"modelVersion":"sha256:x"}`))
	}))
	defer ts.Close()

	benchPath := filepath.Join(t.TempDir(), "bench.json")
	outPath := filepath.Join(t.TempDir(), "out.txt")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-target", ts.URL,
		"-duration", "400ms",
		"-concurrency", "3",
		"-sessions", "2",
		"-bench-json", benchPath,
	}, out)
	out.Close()
	if err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`wimi-load: ok=(\d+) shed=(\d+) failed=(\d+) dropped=(\d+) p50=\S+ p90=\S+ p99=\S+ rps=\S+`)
	m := re.FindStringSubmatch(string(text))
	if m == nil {
		t.Fatalf("summary line missing or unparseable in output:\n%s", text)
	}
	ok, _ := strconv.Atoi(m[1])
	shedN, _ := strconv.Atoi(m[2])
	failed, _ := strconv.Atoi(m[3])
	if ok == 0 {
		t.Error("no successful requests against a healthy stub")
	}
	if int64(shedN) != shed.Load() {
		t.Errorf("summary shed=%d, stub shed %d", shedN, shed.Load())
	}
	if failed != 0 {
		t.Errorf("failed=%d against a healthy stub", failed)
	}
	rep, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"GatewayIdentify/p50"`, `"GatewayIdentify/p99"`, `"ns_per_op"`} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).Match(rep) {
			t.Errorf("bench record missing %s:\n%s", want, rep)
		}
	}
}
