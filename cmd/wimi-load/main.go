// wimi-load is the cluster load harness: it fires identify requests at
// a wimi-gateway (or a bare wimi-serve) in open-loop (target RPS) or
// closed-loop (fixed concurrency) mode, measures the latency
// distribution, and reports a benchdiff-compatible JSON record so
// cluster serving performance is gated the same way the offline
// pipeline is.
//
//	wimi-load -target http://127.0.0.1:8080 -duration 5s -concurrency 8
//	wimi-load -target http://127.0.0.1:8080 -rps 200 -duration 10s \
//	  -bench-json BENCH_cluster.json
//
// The stdout summary is one parseable line:
//
//	wimi-load: ok=812 shed=3 failed=0 dropped=0 p50=11ms p90=19ms p99=40ms rps=163.1
//
// ok counts verified 200s, shed counts honest 429/503 backpressure,
// failed counts transport errors and unexpected statuses (a healthy
// cluster keeps it at zero), dropped counts open-loop ticks skipped
// because the in-flight cap was reached.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/csi"
	"repro/internal/gateway"
	"repro/internal/material"
	"repro/internal/serve"
	"repro/internal/simulate"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-load:", err)
		os.Exit(1)
	}
}

// counters aggregates request outcomes across workers.
type counters struct {
	ok      atomic.Int64
	shed    atomic.Int64
	failed  atomic.Int64
	dropped atomic.Int64
}

// latencies records successful-request latencies for percentiles.
type latencies struct {
	mu   sync.Mutex
	durs []time.Duration
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.durs = append(l.durs, d)
	l.mu.Unlock()
}

// percentile returns the p-th percentile (0 < p ≤ 100) of sorted durs by
// nearest-rank; zero when empty.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wimi-load", flag.ContinueOnError)
	var (
		target      = fs.String("target", "", "gateway or serve base URL (required)")
		duration    = fs.Duration("duration", 5*time.Second, "how long to generate load")
		rps         = fs.Float64("rps", 0, "open-loop target requests/sec (0 = closed loop)")
		concurrency = fs.Int("concurrency", 4, "closed-loop workers, or open-loop in-flight cap")
		sessions    = fs.Int("sessions", 4, "distinct measurement sessions to cycle through (spreads the gateway's content hash)")
		seed        = fs.Int64("seed", 1, "session synthesis seed")
		timeout     = fs.Duration("timeout", 10*time.Second, "per-request client timeout")
		batch       = fs.Int("batch", 1, "requests per POST /v1/identify/batch round trip (1 = single /v1/identify; >1 needs a wimi-serve target)")
		benchJSON   = fs.String("bench-json", "", "write a benchdiff-compatible record here")
		benchName   = fs.String("bench-name", "GatewayIdentify", "name prefix for the -bench-json micro entries")
		serveStats  = fs.Bool("serve-stats", false, "after the run, read the target's stats (gateway /v1/cluster, falling back to serve /readyz) and print its batching/coalescing counters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be ≥1")
	}
	if *sessions < 1 {
		return fmt.Errorf("-sessions must be ≥1")
	}
	if *batch < 1 || *batch > serve.MaxBatchSlots {
		return fmt.Errorf("-batch must be in [1,%d]", serve.MaxBatchSlots)
	}

	bodies, err := makeBodies(*sessions, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wimi-load: %d sessions synthesised, %s for %v (%s)\n",
		len(bodies), *target, *duration, loopMode(*rps, *concurrency))

	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency * 2},
	}
	defer client.CloseIdleConnections()
	url := *target + "/v1/identify"

	var cnt counters
	var lat latencies
	var reqIndex atomic.Int64
	fire := func() {
		i := int(reqIndex.Add(1)-1) % len(bodies)
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i]))
		if err != nil {
			cnt.failed.Add(1)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			cnt.ok.Add(1)
			lat.add(time.Since(start))
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			cnt.shed.Add(1)
		default:
			cnt.failed.Add(1)
		}
	}
	if *batch > 1 {
		fire = batchFire(client, *target, bodies, *batch, &reqIndex, &cnt, &lat)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()
	if *rps > 0 {
		openLoop(ctx, *rps, *concurrency, fire, &cnt)
	} else {
		closedLoop(ctx, *concurrency, fire)
	}
	elapsed := time.Since(start)

	lat.mu.Lock()
	sort.Slice(lat.durs, func(i, j int) bool { return lat.durs[i] < lat.durs[j] })
	sorted := lat.durs
	lat.mu.Unlock()
	p50 := percentile(sorted, 50)
	p90 := percentile(sorted, 90)
	p99 := percentile(sorted, 99)
	achieved := float64(cnt.ok.Load()+cnt.shed.Load()+cnt.failed.Load()) / elapsed.Seconds()

	fmt.Fprintf(out, "wimi-load: ok=%d shed=%d failed=%d dropped=%d p50=%s p90=%s p99=%s rps=%.1f\n",
		cnt.ok.Load(), cnt.shed.Load(), cnt.failed.Load(), cnt.dropped.Load(),
		p50.Round(time.Millisecond), p90.Round(time.Millisecond), p99.Round(time.Millisecond), achieved)

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *benchName, elapsed, sorted, achieved); err != nil {
			return err
		}
		fmt.Fprintf(out, "wimi-load: benchmark record written to %s\n", *benchJSON)
	}
	if *serveStats {
		if err := printServeStats(out, client, *target); err != nil {
			return err
		}
	}
	return nil
}

// batchFire returns a fire function that rides size slots per HTTP round
// trip through POST /v1/identify/batch. Outcomes are counted per slot,
// and the round-trip latency is attributed to every OK slot — that is
// the latency each of those requests actually observed, since none of
// them completes before the batch answer lands.
func batchFire(client *http.Client, target string, bodies [][]byte, size int, reqIndex *atomic.Int64, cnt *counters, lat *latencies) func() {
	url := target + "/v1/identify/batch"
	return func() {
		base := int(reqIndex.Add(int64(size)) - int64(size))
		reqs := make([]json.RawMessage, size)
		for j := 0; j < size; j++ {
			reqs[j] = bodies[(base+j)%len(bodies)]
		}
		payload, err := json.Marshal(serve.BatchIdentifyRequest{Requests: reqs})
		if err != nil {
			cnt.failed.Add(int64(size))
			return
		}
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
		if err != nil {
			cnt.failed.Add(int64(size))
			return
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		elapsed := time.Since(start)
		if err != nil || resp.StatusCode != http.StatusOK {
			switch resp.StatusCode {
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				cnt.shed.Add(int64(size))
			default:
				cnt.failed.Add(int64(size))
			}
			return
		}
		var out serve.BatchIdentifyResponse
		if err := json.Unmarshal(body, &out); err != nil || len(out.Results) != size {
			cnt.failed.Add(int64(size))
			return
		}
		for _, slot := range out.Results {
			switch slot.Status {
			case http.StatusOK:
				cnt.ok.Add(1)
				lat.add(elapsed)
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				cnt.shed.Add(1)
			default:
				cnt.failed.Add(1)
			}
		}
	}
}

// printServeStats summarises the target's batching behaviour after the
// run. A gateway target answers /v1/cluster (coalescing, upstream batch
// histogram, connection reuse); a bare wimi-serve answers /readyz (batch
// executor histogram, verdict cache). All histogram mass at size 1 means
// the load pattern never actually coalesced.
func printServeStats(out io.Writer, client *http.Client, target string) error {
	if done, err := printGatewayStats(out, client, target); done || err != nil {
		return err
	}
	resp, err := client.Get(target + "/readyz")
	if err != nil {
		return fmt.Errorf("reading %s/readyz: %w", target, err)
	}
	defer func() { _ = resp.Body.Close() }()
	var ready struct {
		Stats serve.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		return fmt.Errorf("decoding %s/readyz (is the target a wimi-serve?): %w", target, err)
	}
	st := ready.Stats
	var batches, coalesced uint64
	fmt.Fprint(out, "wimi-load: batch sizes")
	for i, n := range st.BatchSizes {
		batches += n
		if i > 0 {
			coalesced += n
		}
		if n > 0 {
			fmt.Fprintf(out, " %d:%d", i+1, n)
		}
	}
	if batches == 0 {
		fmt.Fprint(out, " (no batches executed)")
	} else {
		fmt.Fprintf(out, " (%d batches, %.0f%% coalesced)", batches, 100*float64(coalesced)/float64(batches))
	}
	fmt.Fprintf(out, " cache hits=%d misses=%d\n", st.CacheHits, st.CacheMisses)
	return nil
}

// printGatewayStats reads /v1/cluster and, when the target turns out to
// be a gateway, prints its data-plane counters. Returns done=false when
// the target has no /v1/cluster (a bare wimi-serve) so the caller can
// fall back.
func printGatewayStats(out io.Writer, client *http.Client, target string) (bool, error) {
	resp, err := client.Get(target + "/v1/cluster")
	if err != nil {
		return false, fmt.Errorf("reading %s/v1/cluster: %w", target, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return false, nil
	}
	var cluster struct {
		Stats gateway.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cluster); err != nil {
		return false, fmt.Errorf("decoding %s/v1/cluster: %w", target, err)
	}
	st := cluster.Stats
	fmt.Fprintf(out, "wimi-load: gateway coalesced=%d batches=%d", st.Coalesced, st.BatchesSent)
	if len(st.BatchSizes) > 0 {
		fmt.Fprint(out, " flush sizes")
		for i, n := range st.BatchSizes {
			if n > 0 {
				fmt.Fprintf(out, " %d:%d", i+1, n)
			}
		}
	}
	reusePct := 0.0
	if st.UpstreamConns > 0 {
		reusePct = 100 * float64(st.UpstreamConnsReused) / float64(st.UpstreamConns)
	}
	fmt.Fprintf(out, " conns=%d reused=%.0f%%\n", st.UpstreamConns, reusePct)
	return true, nil
}

func loopMode(rps float64, concurrency int) string {
	if rps > 0 {
		return fmt.Sprintf("open loop, %.0f rps target", rps)
	}
	return fmt.Sprintf("closed loop, %d workers", concurrency)
}

// closedLoop keeps exactly n requests in flight until ctx expires: each
// worker fires back-to-back, so throughput floats with cluster latency.
func closedLoop(ctx context.Context, n int, fire func()) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				fire()
			}
		}()
	}
	wg.Wait()
}

// openLoop fires at a fixed tick independent of response latency — the
// arrival process a real client population produces. The in-flight cap
// keeps a stalled cluster from accumulating unbounded goroutines; ticks
// that find the cap exhausted are counted as dropped rather than
// silently queued (queueing would hide coordinated omission).
func openLoop(ctx context.Context, rps float64, maxInflight int, fire func(), cnt *counters) {
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	sem := make(chan struct{}, maxInflight)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					fire()
				}()
			default:
				cnt.dropped.Add(1)
			}
		}
	}
}

// makeBodies synthesises n distinct identify request bodies: sessions
// simulated over the paper's material set, encoded exactly as the wire
// format expects. Distinct bodies mean distinct content hashes, so a
// gateway spreads them across its backends.
func makeBodies(n int, seed int64) ([][]byte, error) {
	db := material.PaperDatabase()
	names := db.Names()
	if len(names) == 0 {
		return nil, fmt.Errorf("empty material database")
	}
	var bodies [][]byte
	for i := 0; i < n; i++ {
		m, err := db.Get(names[i%len(names)])
		if err != nil {
			return nil, err
		}
		sc := simulate.Default()
		sc.Liquid = &m
		s, err := simulate.Session(sc, seed+int64(i)*7919)
		if err != nil {
			return nil, fmt.Errorf("synthesising session %d: %w", i, err)
		}
		body, err := encodeIdentify(s)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

func encodeIdentify(s *csi.Session) ([]byte, error) {
	enc := func(c *csi.Capture) ([]byte, error) {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, c.NumAntennas(), s.Carrier)
		if err != nil {
			return nil, err
		}
		if err := w.WriteCapture(c); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	baseline, err := enc(&s.Baseline)
	if err != nil {
		return nil, err
	}
	target, err := enc(&s.Target)
	if err != nil {
		return nil, err
	}
	return json.Marshal(serve.IdentifyRequest{Baseline: baseline, Target: target})
}

// benchReport mirrors the schema cmd/benchdiff gates on (a subset of
// wimi-bench's record: the comparator ignores fields it does not know).
type benchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	TotalWall  int64        `json:"total_wall_ns"`
	Micro      []benchMicro `json:"micro"`
}

type benchMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func writeBenchJSON(path, name string, elapsed time.Duration, sorted []time.Duration, rps float64) error {
	rep := benchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		TotalWall:  elapsed.Nanoseconds(),
		Micro: []benchMicro{
			{Name: name + "/p50", NsPerOp: float64(percentile(sorted, 50).Nanoseconds())},
			{Name: name + "/p90", NsPerOp: float64(percentile(sorted, 90).Nanoseconds())},
			{Name: name + "/p99", NsPerOp: float64(percentile(sorted, 99).Nanoseconds())},
			// Mean time between completions: the throughput inverse, in the
			// same lower-is-better unit the comparator gates on.
			{Name: name + "/ns-per-request", NsPerOp: nsPerRequest(rps)},
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func nsPerRequest(rps float64) float64 {
	if rps <= 0 {
		return 0
	}
	return float64(time.Second.Nanoseconds()) / rps
}
