package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/simulate"
	"repro/internal/trace"
)

func writeTestTrace(t *testing.T, packets int) string {
	t.Helper()
	sc := simulate.Default()
	m, err := material.PaperDatabase().Get(material.Milk)
	if err != nil {
		t.Fatal(err)
	}
	sc.Liquid = &m
	sc.Packets = packets
	session, err := simulate.Session(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "test.csitrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, sc.NumAntennas, sc.Carrier)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCapture(&session.Target); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunInfoValidateHead(t *testing.T) {
	path := writeTestTrace(t, 6)
	for _, cmd := range [][]string{
		{"info", path},
		{"validate", path},
		{"head", "-n", "3", path},
	} {
		if err := run(cmd); err != nil {
			t.Errorf("%v: %v", cmd, err)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"info"}); err == nil {
		t.Error("missing file should error")
	}
	if err := run([]string{"explode", "x"}); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"info", "/nonexistent/file"}); err == nil {
		t.Error("missing file should error")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	path := writeTestTrace(t, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-20] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.csitrace")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate", bad}); err == nil {
		t.Error("corrupted trace should fail validation")
	}
}

func TestHeadPastEndOfStream(t *testing.T) {
	path := writeTestTrace(t, 2)
	// Asking for more packets than exist ends cleanly at EOF.
	if err := run([]string{"head", "-n", "50", path}); err != nil {
		t.Errorf("head past EOF: %v", err)
	}
}

func TestInfoTimestampsAndAmplitudes(t *testing.T) {
	// Hand-built trace with zero amplitude on antenna 0: info must not
	// divide by zero or error.
	path := filepath.Join(t.TempDir(), "zero.csitrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, 1, 5e9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := csi.NewMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(csi.Packet{Seq: 0, Timestamp: time.Unix(0, 0), CSI: m}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"info", path}); err != nil {
		t.Errorf("info on zero-amplitude trace: %v", err)
	}
}
