// wimi-trace inspects .csitrace files: stream metadata, integrity
// validation, and per-packet summaries.
//
//	wimi-trace info session.baseline.csitrace
//	wimi-trace validate session.target.csitrace
//	wimi-trace head -n 5 session.target.csitrace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/csi"
	"repro/internal/mathx"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-trace:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: wimi-trace <info|validate|head> [-n N] <file.csitrace>")
}

func run(args []string) error {
	if len(args) < 1 {
		return usage()
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	n := fs.Int("n", 10, "packets to show (head)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usage()
	}
	path := fs.Arg(0)
	switch cmd {
	case "info":
		return info(path)
	case "validate":
		return validate(path)
	case "head":
		return head(path, *n)
	default:
		return usage()
	}
}

func open(path string) (*os.File, *trace.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, r, nil
}

func info(path string) error {
	f, r, err := open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	hdr := r.Header()
	capture, err := r.ReadAll()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("file:      %s\n", path)
	fmt.Printf("format:    csitrace v%d\n", hdr.Version)
	fmt.Printf("antennas:  %d\n", hdr.NumAnt)
	fmt.Printf("carrier:   %.3f GHz\n", hdr.Carrier/1e9)
	fmt.Printf("packets:   %d\n", capture.Len())
	if capture.Len() >= 2 {
		first := capture.Packets[0].Timestamp
		last := capture.Packets[capture.Len()-1].Timestamp
		fmt.Printf("duration:  %v\n", last.Sub(first))
	}
	if capture.Len() > 0 {
		var amps []float64
		for i := range capture.Packets {
			a, err := capture.Packets[i].CSI.Amplitude(0, csi.NumSubcarriers/2)
			if err != nil {
				return err
			}
			amps = append(amps, a)
		}
		fmt.Printf("amplitude: mean %.4f, std %.4f (antenna 1, centre subcarrier)\n",
			mathx.Mean(amps), mathx.StdDev(amps))
	}
	return nil
}

func validate(path string) error {
	f, r, err := open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	count := 0
	for {
		_, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			fmt.Printf("%s: OK — %d packets, all checksums valid\n", path, count)
			return nil
		}
		if errors.Is(err, trace.ErrCorrupt) {
			return fmt.Errorf("%s: CORRUPT after %d valid packets: %w", path, count, err)
		}
		if err != nil {
			return fmt.Errorf("%s: TRUNCATED after %d valid packets: %w", path, count, err)
		}
		count++
	}
}

func head(path string, n int) error {
	f, r, err := open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	fmt.Printf("%-6s %-28s %-10s %s\n", "seq", "timestamp", "mean|H|", "phase[ant1,sub15]")
	for i := 0; i < n; i++ {
		pkt, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		var sum float64
		cnt := 0
		for ant := 0; ant < pkt.CSI.NumAntennas(); ant++ {
			for sub := 0; sub < csi.NumSubcarriers; sub++ {
				a, err := pkt.CSI.Amplitude(ant, sub)
				if err != nil {
					return err
				}
				sum += a
				cnt++
			}
		}
		ph, err := pkt.CSI.Phase(0, 15)
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %-28s %-10.4f %+.4f rad\n",
			pkt.Seq, pkt.Timestamp.Format("2006-01-02T15:04:05.000"), sum/float64(cnt), ph)
	}
	return nil
}
