// wimi-gateway is the cluster front end for wimi-serve: it routes
// /v1/identify across N backends with rendezvous-hash affinity and
// bounded-load spillover, fails over around unhealthy backends (circuit
// breakers + /readyz probes), retries under a per-request deadline
// budget, honours backend Retry-After hints, verifies response
// integrity end to end, and keeps the cluster converged on one model
// digest by pushing /v1/reload at backends serving a stale sha256.
//
// Cluster quickstart (1 gateway + 3 backends):
//
//	wimi-sim -save-model /models/lab.json
//	wimi-serve -addr 127.0.0.1:8081 -model /models/lab.json &
//	wimi-serve -addr 127.0.0.1:8082 -model /models/lab.json &
//	wimi-serve -addr 127.0.0.1:8083 -model /models/lab.json &
//	wimi-gateway -addr 127.0.0.1:8080 -expect-model /models/lab.json \
//	  -backends http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	  -batch 8 -linger 200us
//	curl -d @request.json localhost:8080/v1/identify
//
// -batch > 1 turns on the batched data plane: concurrent requests to the
// same backend aggregate into one upstream /v1/identify/batch call and
// identical in-flight requests coalesce into a single upstream slot.
//
// Endpoints:
//
//	POST /v1/identify  routed + verified backend answer
//	GET  /v1/cluster   per-backend health, breaker and model state
//	GET  /healthz      liveness
//	GET  /readyz       readiness (≥1 routable backend, not draining)
//
// SIGHUP re-reads -expect-model's digest, so pushing a new model file
// and HUPing the gateway converges the whole cluster.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/registry"
	"repro/internal/resilience"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-gateway:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wimi-gateway", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		backends      = fs.String("backends", "", "comma-separated wimi-serve base URLs (required)")
		expectModel   = fs.String("expect-model", "", "model file or directory; its content digest is the version every backend must serve (SIGHUP re-reads)")
		probeInterval = fs.Duration("probe-interval", time.Second, "backend /readyz probe period")
		deadline      = fs.Duration("deadline", 10*time.Second, "per-request deadline budget shared across retries")
		retries       = fs.Int("retries", 3, "max attempts per request across backends")
		hedgeAfter    = fs.Duration("hedge-after", 0, "fire a duplicate request at the next backend after this delay (0 disables)")
		loadSlack     = fs.Int("load-slack", 2, "in-flight requests above the least-loaded backend before affinity spills")
		batchMax      = fs.Int("batch", 1, "aggregate up to this many concurrent requests per backend into one upstream batch call; >1 also coalesces identical in-flight requests (1 disables)")
		linger        = fs.Duration("linger", 0, "how long a non-full upstream batch waits for company (0 = dispatch immediately)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("-backends is required (comma-separated wimi-serve URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	expected := ""
	if *expectModel != "" {
		digest, err := registry.SourceDigest(*expectModel)
		if err != nil {
			return fmt.Errorf("resolving -expect-model: %w", err)
		}
		expected = digest
	}

	logger := log.New(out, "", log.LstdFlags)
	g, err := gateway.New(gateway.Config{
		Backends:        urls,
		ExpectedVersion: expected,
		ProbeInterval:   *probeInterval,
		RequestTimeout:  *deadline,
		MaxAttempts:     *retries,
		HedgeDelay:      *hedgeAfter,
		LoadSlack:       *loadSlack,
		BatchMax:        *batchMax,
		BatchLinger:     *linger,
		Backoff:         resilience.BackoffConfig{Jitter: resilience.JitterFull},
		Logf:            logger.Printf,
	})
	if err != nil {
		return err
	}
	defer g.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wimi-gateway: listening on %s (%d backends, expect %s)\n",
		ln.Addr(), len(urls), orNone(expected))

	httpSrv := &http.Server{Handler: g.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-serveErr:
			if err != nil && err != http.ErrServerClosed {
				return err
			}
			return nil
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if *expectModel == "" {
					fmt.Fprintf(out, "wimi-gateway: SIGHUP ignored (no -expect-model)\n")
					continue
				}
				digest, err := registry.SourceDigest(*expectModel)
				if err != nil {
					fmt.Fprintf(out, "wimi-gateway: re-reading -expect-model failed, keeping %s: %v\n",
						orNone(g.ExpectedVersion()), err)
					continue
				}
				g.SetExpectedVersion(digest)
				fmt.Fprintf(out, "wimi-gateway: expecting model %s cluster-wide\n", digest)
				continue
			}
			fmt.Fprintf(out, "wimi-gateway: %s received, draining...\n", sig)
			err := httpSrv.Close()
			g.Close()
			st := g.Stats()
			fmt.Fprintf(out, "wimi-gateway: drained (proxied %d, retried %d, hedged %d, spilled %d, shed %d, failed %d, coalesced %d, batches %d)\n",
				st.Proxied, st.Retried, st.Hedged, st.Spilled, st.Shed, st.Failed, st.Coalesced, st.BatchesSent)
			return err
		}
	}
}

func orNone(v string) string {
	if v == "" {
		return "any model"
	}
	return v
}
