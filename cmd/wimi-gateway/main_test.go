package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/wimi"
)

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil || !strings.Contains(err.Error(), "-backends") {
		t.Errorf("missing -backends: %v", err)
	}
	if err := run([]string{"-backends", "not-a-url"}, os.Stdout); err == nil {
		t.Error("relative backend URL should error")
	}
	if err := run([]string{"-backends", "http://127.0.0.1:1,http://127.0.0.1:1"}, os.Stdout); err == nil {
		t.Error("duplicate backends should error")
	}
	if err := run([]string{"-backends", "http://127.0.0.1:1", "-expect-model", "/does/not/exist.json"}, os.Stdout); err == nil {
		t.Error("missing -expect-model source should error")
	}
	if err := run([]string{"-not-a-flag"}, os.Stdout); err == nil {
		t.Error("bad flag should error")
	}
}

// trainFixtureModel trains a tiny model and saves it under t.TempDir.
func trainFixtureModel(t *testing.T) string {
	t.Helper()
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.PureWater, wimi.Honey} {
		m, err := wimi.Liquid(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := wimi.DefaultScenario()
		sc.Liquid = &m
		set, err := wimi.SimulateTrials(sc, 4, int64(li)*1_000_003+1)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range set {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wimi.SaveIdentifier(id, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// daemon is one child process whose stdout announces a listen address.
type daemon struct {
	proc *exec.Cmd
	addr string
}

// startDaemon launches bin with args and waits for "listening on ADDR"
// on stdout.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	proc := exec.Command(bin, args...)
	stdout, err := proc.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	proc.Stderr = os.Stderr
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proc.Process.Kill() })

	lineCh := make(chan string, 16)
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			lineCh <- scanner.Text()
		}
		close(lineCh)
	}()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatalf("%s exited before announcing its address", filepath.Base(bin))
			}
			if _, rest, found := strings.Cut(line, "listening on "); found {
				// Drain the rest of stdout so the child never blocks on a
				// full pipe.
				go func() {
					for range lineCh {
					}
				}()
				return &daemon{proc: proc, addr: strings.Fields(rest)[0]}
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s to listen", filepath.Base(bin))
		}
	}
}

func buildBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestClusterSmoke is the binary-level cluster drill behind `make
// cluster-smoke`: a gateway over two wimi-serve backends — running the
// batched data plane (-batch 8) — takes a wimi-load burst while one
// backend is SIGKILLed mid-run. The gateway
// must keep answering around the dead backend: the load report ends
// with zero failed requests, and the bench JSON carries the
// GatewayIdentify entries.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke burst")
	}
	dir := t.TempDir()
	gatewayBin := buildBinary(t, dir, "wimi-gateway", "repro/cmd/wimi-gateway")
	serveBin := buildBinary(t, dir, "wimi-serve", "repro/cmd/wimi-serve")
	loadBin := buildBinary(t, dir, "wimi-load", "repro/cmd/wimi-load")
	model := trainFixtureModel(t)

	b1 := startDaemon(t, serveBin, "-addr", "127.0.0.1:0", "-model", model)
	b2 := startDaemon(t, serveBin, "-addr", "127.0.0.1:0", "-model", model)
	gw := startDaemon(t, gatewayBin,
		"-addr", "127.0.0.1:0",
		"-backends", fmt.Sprintf("http://%s,http://%s", b1.addr, b2.addr),
		"-expect-model", model,
		"-probe-interval", "100ms",
		"-retries", "4",
		"-deadline", "5s",
		"-batch", "8",
		"-linger", "200us",
	)
	base := "http://" + gw.addr

	// Wait until the gateway has probed both backends routable.
	client := &http.Client{Timeout: 5 * time.Second}
	waitDeadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(waitDeadline) {
			t.Fatal("gateway never saw both backends routable")
		}
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			var rz struct {
				Ready    bool `json:"ready"`
				Routable int  `json:"routable"`
			}
			err2 := json.NewDecoder(resp.Body).Decode(&rz)
			_ = resp.Body.Close()
			if err2 == nil && rz.Ready && rz.Routable == 2 {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Mid-burst, SIGKILL one backend: no drain, no goodbye — the gateway
	// has to notice and route around it.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(700 * time.Millisecond)
		_ = b2.proc.Process.Kill()
	}()

	benchPath := filepath.Join(dir, "bench.json")
	load := exec.Command(loadBin,
		"-target", base,
		"-duration", "2s",
		"-concurrency", "4",
		"-sessions", "4",
		"-bench-json", benchPath,
	)
	out, err := load.CombinedOutput()
	if err != nil {
		t.Fatalf("wimi-load: %v\n%s", err, out)
	}
	<-killDone

	re := regexp.MustCompile(`wimi-load: ok=(\d+) shed=(\d+) failed=(\d+) dropped=(\d+)`)
	m := re.FindStringSubmatch(string(out))
	if m == nil {
		t.Fatalf("no parseable summary in wimi-load output:\n%s", out)
	}
	ok, _ := strconv.Atoi(m[1])
	failed, _ := strconv.Atoi(m[3])
	if ok == 0 {
		t.Fatalf("zero requests answered through the burst:\n%s", out)
	}
	if failed != 0 {
		t.Fatalf("%d failed requests while a backend died mid-burst (want 0):\n%s", failed, out)
	}

	rep, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), `"GatewayIdentify/p50"`) {
		t.Errorf("bench record missing GatewayIdentify entries:\n%s", rep)
	}

	// The cluster status must show the dead backend unhealthy and the
	// survivor carrying the traffic.
	resp, err := client.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cluster struct {
		Backends []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
			Served  uint64 `json:"served"`
		} `json:"backends"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cluster)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var survivorServed uint64
	for _, b := range cluster.Backends {
		if b.URL == "http://"+b1.addr {
			survivorServed = b.Served
		}
	}
	if survivorServed == 0 {
		t.Errorf("surviving backend served nothing: %+v", cluster.Backends)
	}

	// Graceful gateway shutdown on SIGTERM with exit 0.
	if err := gw.proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- gw.proc.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wimi-gateway exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("wimi-gateway did not drain within 15s of SIGTERM")
	}
	_ = b1.proc.Process.Signal(syscall.SIGTERM)
	fmt.Println("cluster-smoke: ok")
}
