// wimi-sim generates synthetic CSI measurement sessions — the simulator
// stand-in for the Intel 5300 CSI Tool capture — and writes them as a pair
// of .csitrace files (baseline and target).
//
// Example:
//
//	wimi-sim -liquid pepsi -env lab -out /tmp/pepsi
//	→ /tmp/pepsi.baseline.csitrace and /tmp/pepsi.target.csitrace
//
// With -save-model the tool instead trains an identifier on simulated
// trials of every candidate liquid in the scenario and persists it — the
// offline half of the train → save → serve workflow:
//
//	wimi-sim -save-model /models/lab.json
//	wimi-serve -model /models/lab.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/propagation"
	"repro/internal/trace"
	"repro/wimi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wimi-sim", flag.ContinueOnError)
	var (
		liquid    = fs.String("liquid", "pure-water", "liquid to simulate (see -list)")
		env       = fs.String("env", "lab", "environment: hall, lab or library")
		distance  = fs.Float64("distance", 2.0, "Tx-Rx distance in metres")
		packets   = fs.Int("packets", 20, "packets per capture")
		seed      = fs.Int64("seed", 1, "trial seed")
		roomSeed  = fs.Int64("room-seed", 7, "room (scatterer constellation) seed")
		diameter  = fs.Float64("diameter", 0.143, "container diameter in metres")
		container = fs.String("container", "plastic", "container material: plastic, glass or metal")
		out       = fs.String("out", "session", "output path prefix")
		list      = fs.Bool("list", false, "list available liquids and exit")
		saveModel = fs.String("save-model", "", "train an identifier on the scenario and save it to this path (no traces written)")
		cands     = fs.String("candidates", "", "comma-separated training liquids for -save-model (default: the paper's ten)")
		trials    = fs.Int("trials", 12, "training trials per candidate for -save-model")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range wimi.Liquids() {
			fmt.Println(name)
		}
		return nil
	}

	sc := wimi.DefaultScenario()
	environment, err := propagation.EnvironmentByName(*env)
	if err != nil {
		return err
	}
	sc.Env = environment
	sc.LinkDistance = *distance
	sc.Packets = *packets
	sc.RoomSeed = *roomSeed
	sc.Diameter = *diameter
	switch *container {
	case "plastic":
		sc.Container = material.ContainerPlastic
	case "glass":
		sc.Container = material.ContainerGlass
	case "metal":
		sc.Container = material.ContainerMetal
	default:
		return fmt.Errorf("unknown container %q (want plastic, glass or metal)", *container)
	}
	if *saveModel != "" {
		return trainAndSave(sc, *cands, *trials, *saveModel)
	}

	m, err := wimi.Liquid(*liquid)
	if err != nil {
		return err
	}
	sc.Liquid = &m

	session, err := wimi.Simulate(sc, *seed)
	if err != nil {
		return err
	}
	if err := writeTrace(*out+".baseline.csitrace", &session.Baseline, sc.NumAntennas, sc.Carrier); err != nil {
		return err
	}
	if err := writeTrace(*out+".target.csitrace", &session.Target, sc.NumAntennas, sc.Carrier); err != nil {
		return err
	}
	fmt.Printf("wrote %s.baseline.csitrace and %s.target.csitrace (%d packets each, %s in %s at %.1f m)\n",
		*out, *out, *packets, *liquid, *env, *distance)
	return nil
}

// trainAndSave trains an identifier on simulated trials of every
// candidate liquid under the given scenario and persists it, so the model
// can be served online (wimi-serve) or reused by wimi-identify -model.
func trainAndSave(sc wimi.Scenario, candidates string, trials int, path string) error {
	if trials < 1 {
		return fmt.Errorf("need at least one training trial, got %d", trials)
	}
	names := []string{
		wimi.Vinegar, wimi.Honey, wimi.Soy, wimi.Milk, wimi.Pepsi,
		wimi.Liquor, wimi.PureWater, wimi.Oil, wimi.Coke, wimi.SweetWater,
	}
	if candidates != "" {
		names = strings.Split(candidates, ",")
	}
	fmt.Printf("training identifier on %d candidates × %d trials...\n", len(names), trials)
	var sessions []*wimi.Session
	var labels []string
	for li, name := range names {
		m, err := wimi.Liquid(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		sc.Liquid = &m
		trialSet, err := wimi.SimulateTrials(sc, trials, int64(li)*1_000_003+1)
		if err != nil {
			return err
		}
		for _, s := range trialSet {
			sessions = append(sessions, s)
			labels = append(labels, m.Name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := wimi.SaveIdentifier(id, f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("saved trained model (%d classes, %d sessions) to %s\n", len(names), len(sessions), path)
	return nil
}

func writeTrace(path string, capture *csi.Capture, numAnt int, carrier float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	w, err := trace.NewWriter(f, numAnt, carrier)
	if err != nil {
		_ = f.Close()
		return err
	}
	if err := w.WriteCapture(capture); err != nil {
		_ = f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
