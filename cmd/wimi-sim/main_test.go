package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/wimi"
)

func TestRunGeneratesTracePair(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "milk")
	err := run([]string{"-liquid", "milk", "-packets", "5", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".baseline.csitrace", ".target.csitrace"} {
		f, err := os.Open(out + suffix)
		if err != nil {
			t.Fatalf("missing %s: %v", suffix, err)
		}
		r, err := trace.NewReader(f)
		if err != nil {
			t.Fatalf("%s: %v", suffix, err)
		}
		capture, err := r.ReadAll()
		_ = f.Close()
		if err != nil {
			t.Fatalf("%s: %v", suffix, err)
		}
		if capture.Len() != 5 {
			t.Errorf("%s has %d packets, want 5", suffix, capture.Len())
		}
		if capture.NumAntennas() != 3 {
			t.Errorf("%s has %d antennas", suffix, capture.NumAntennas())
		}
	}
}

func TestRunSaveModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	err := run([]string{"-save-model", path, "-candidates", "pure-water,honey", "-trials", "3"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	id, err := wimi.LoadIdentifier(f)
	if err != nil {
		t.Fatalf("saved model does not load: %v", err)
	}
	// The persisted model must identify a fresh session of a trained class.
	m, err := wimi.Liquid("honey")
	if err != nil {
		t.Fatal(err)
	}
	sc := wimi.DefaultScenario()
	sc.Liquid = &m
	s, err := wimi.Simulate(sc, 1_000_004) // the first honey training seed
	if err != nil {
		t.Fatal(err)
	}
	if got, err := id.Identify(s); err != nil || got != "honey" {
		t.Errorf("identify: got %q, err %v", got, err)
	}
}

func TestRunSaveModelRejectsBadInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	if err := run([]string{"-save-model", path, "-trials", "0"}); err == nil {
		t.Error("zero trials should error")
	}
	if err := run([]string{"-save-model", path, "-candidates", "unobtainium", "-trials", "2"}); err == nil {
		t.Error("unknown training liquid should error")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-liquid", "plutonium"}); err == nil {
		t.Error("unknown liquid should error")
	}
	if err := run([]string{"-env", "cave"}); err == nil {
		t.Error("unknown environment should error")
	}
	if err := run([]string{"-container", "cardboard"}); err == nil {
		t.Error("unknown container should error")
	}
	if err := run([]string{"-packets", "0"}); err == nil {
		t.Error("zero packets should error")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunContainerVariants(t *testing.T) {
	dir := t.TempDir()
	for _, c := range []string{"plastic", "glass", "metal"} {
		out := filepath.Join(dir, c)
		if err := run([]string{"-container", c, "-packets", "2", "-out", out}); err != nil {
			t.Errorf("container %s: %v", c, err)
		}
	}
}
