package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/wimi"
)

func TestCollectAgainstLocalServer(t *testing.T) {
	// Start a throwaway server (the serve() path blocks on signals, so the
	// test drives transport.Server directly and exercises collect()).
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.Milk)
	sc.Packets = 30
	session, err := wimi.Simulate(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr: "127.0.0.1:0",
		NewSource: func() (transport.PacketSource, error) {
			return transport.NewCaptureSource(&session.Target), nil
		},
		NumAnt:  sc.NumAntennas,
		Carrier: sc.Carrier,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	out := filepath.Join(t.TempDir(), "collected.csitrace")
	opts := collectOptions{addr: srv.Addr().String(), packets: 10, out: out, timeout: time.Minute}
	if err := collect(opts); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if capture.Len() != 10 {
		t.Errorf("collected %d packets, want 10", capture.Len())
	}
}

func TestCollectNoOutput(t *testing.T) {
	sc := wimi.DefaultScenario()
	sc.Packets = 5
	session, err := wimi.Simulate(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr: "127.0.0.1:0",
		NewSource: func() (transport.PacketSource, error) {
			return transport.NewCaptureSource(&session.Baseline), nil
		},
		NumAnt:   sc.NumAntennas,
		Carrier:  sc.Carrier,
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	if err := collect(collectOptions{addr: srv.Addr().String(), packets: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectThroughLossyProfile(t *testing.T) {
	// The -fault-profile demo path: a lossy source must still yield a full
	// collection (the server replays the stream per reconnect, and the
	// schedule differs per attempt only through the source's own draws).
	sc := wimi.DefaultScenario()
	sc.Packets = 40
	session, err := wimi.Simulate(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr: "127.0.0.1:0",
		NewSource: func() (transport.PacketSource, error) {
			return faults.WrapSource(
				transport.NewCaptureSource(&session.Target), faults.Lossy(), 9)
		},
		NumAnt:  sc.NumAntennas,
		Carrier: sc.Carrier,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	// Collect fewer packets than the stream holds so the ~10% loss still
	// leaves enough to finish in one connection.
	opts := collectOptions{
		addr:    srv.Addr().String(),
		packets: 30,
		timeout: time.Minute,
		retries: 3,
		backoff: 5 * time.Millisecond,
	}
	if err := collect(opts); err != nil {
		t.Fatal(err)
	}
}

func TestRunModeValidation(t *testing.T) {
	if err := run([]string{"-mode", "teleport"}); err == nil {
		t.Error("unknown mode should error")
	}
	if err := run([]string{"-mode", "collect", "-addr", "127.0.0.1:1", "-retry", "0", "-timeout", "5s"}); err == nil {
		t.Error("dead address should error")
	}
	if err := run([]string{"-mode", "serve", "-addr", "127.0.0.1:0", "-fault-profile", "tsunami"}); err == nil {
		t.Error("unknown fault profile should error")
	}
}

func TestServeRejectsUnknownLiquid(t *testing.T) {
	if err := serve(serveOptions{addr: "127.0.0.1:0", liquid: "plutonium", seed: 1}); err == nil {
		t.Error("unknown liquid should error")
	}
}
