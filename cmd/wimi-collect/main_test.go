package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
	"repro/wimi"
)

func TestCollectAgainstLocalServer(t *testing.T) {
	// Start a throwaway server (the serve() path blocks on signals, so the
	// test drives transport.Server directly and exercises collect()).
	sc := wimi.DefaultScenario()
	sc.Liquid = wimi.MustLiquid(wimi.Milk)
	sc.Packets = 30
	session, err := wimi.Simulate(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr: "127.0.0.1:0",
		NewSource: func() (transport.PacketSource, error) {
			return transport.NewCaptureSource(&session.Target), nil
		},
		NumAnt:  sc.NumAntennas,
		Carrier: sc.Carrier,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	out := filepath.Join(t.TempDir(), "collected.csitrace")
	if err := collect(srv.Addr().String(), 10, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if capture.Len() != 10 {
		t.Errorf("collected %d packets, want 10", capture.Len())
	}
}

func TestCollectNoOutput(t *testing.T) {
	sc := wimi.DefaultScenario()
	sc.Packets = 5
	session, err := wimi.Simulate(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr: "127.0.0.1:0",
		NewSource: func() (transport.PacketSource, error) {
			return transport.NewCaptureSource(&session.Baseline), nil
		},
		NumAnt:   sc.NumAntennas,
		Carrier:  sc.Carrier,
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	if err := collect(srv.Addr().String(), 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunModeValidation(t *testing.T) {
	if err := run([]string{"-mode", "teleport"}); err == nil {
		t.Error("unknown mode should error")
	}
	if err := run([]string{"-mode", "collect", "-addr", "127.0.0.1:1"}); err == nil {
		t.Error("dead address should error")
	}
}

func TestServeRejectsUnknownLiquid(t *testing.T) {
	if err := serve("127.0.0.1:0", "plutonium", 1); err == nil {
		t.Error("unknown liquid should error")
	}
}
