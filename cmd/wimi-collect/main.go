// wimi-collect is the distributed collection demo: one process serves
// simulated CSI over TCP (the measurement node), another collects it and
// optionally writes a .csitrace file.
//
//	wimi-collect -mode serve -addr 127.0.0.1:9402 -liquid milk
//	wimi-collect -mode collect -addr 127.0.0.1:9402 -packets 20 -out milk.csitrace
//
// The serve side can degrade its own stream for resilience demos — e.g.
// `-fault-profile lossy` drops a tenth of the packets, `-fault-profile
// chaos` adds duplication, reordering, a dead antenna, corruption and a
// mid-stream disconnect. The collect side rides the faults out with
// reconnection (-retry, -backoff), per-read deadlines and deduplication,
// and reports what it survived.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/csi"
	"repro/internal/faults"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/wimi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-collect:", err)
		os.Exit(1)
	}
}

// collectOptions parameterises collect mode.
type collectOptions struct {
	addr    string
	packets int
	out     string
	// timeout bounds the whole collection; 0 means no limit (ctrl-c still
	// cancels cleanly).
	timeout time.Duration
	// retries and backoff configure the collector's reconnection policy.
	retries int
	backoff time.Duration
}

// serveOptions parameterises serve mode.
type serveOptions struct {
	addr   string
	liquid string
	seed   int64
	// profile names a fault-injection profile (see -fault-profile) applied
	// to the served stream; empty serves cleanly.
	profile   string
	faultSeed int64
	// monitor switches the served stream from a continuous target capture
	// to endless quiet→target cycles — the shape a change-point monitor
	// (wimi-hub) needs to learn a baseline and detect appearances.
	monitor bool
}

func run(args []string) error {
	fs := flag.NewFlagSet("wimi-collect", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "collect", "serve or collect")
		addr    = fs.String("addr", "127.0.0.1:9402", "server address")
		liquid  = fs.String("liquid", "pure-water", "liquid to serve (serve mode)")
		packets = fs.Int("packets", 20, "packets to collect (collect mode; 0 = until stream ends)")
		out     = fs.String("out", "", "optional .csitrace output (collect mode)")
		seed    = fs.Int64("seed", 1, "simulation seed (serve mode)")
		timeout = fs.Duration("timeout", 2*time.Minute, "collection time limit (collect mode; 0 = none)")
		retries = fs.Int("retry", 3, "reconnect attempts after a failed stream (collect mode)")
		backoff = fs.Duration("backoff", 100*time.Millisecond, "initial reconnect backoff, doubling per attempt (collect mode)")
		profile = fs.String("fault-profile", "",
			"inject faults into the served stream (serve mode): "+strings.Join(faults.Names(), ", "))
		faultSeed = fs.Int64("fault-seed", 1, "fault schedule base seed; each connection draws a distinct sub-seed (serve mode)")
		monitor   = fs.Bool("monitor", false, "serve mode: stream endless quiet→target cycles (what a change-point monitor like wimi-hub expects) instead of a continuous target capture")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *mode {
	case "serve":
		return serve(serveOptions{
			addr: *addr, liquid: *liquid, seed: *seed,
			profile: *profile, faultSeed: *faultSeed, monitor: *monitor,
		})
	case "collect":
		return collect(collectOptions{
			addr: *addr, packets: *packets, out: *out,
			timeout: *timeout, retries: *retries, backoff: *backoff,
		})
	default:
		return fmt.Errorf("unknown mode %q (want serve or collect)", *mode)
	}
}

func serve(opts serveOptions) error {
	sc := wimi.DefaultScenario()
	m, err := wimi.Liquid(opts.liquid)
	if err != nil {
		return err
	}
	sc.Liquid = &m
	sc.Packets = 1 << 16 // effectively endless for a demo

	var fp faults.Profile
	if opts.profile != "" {
		fp, err = faults.ByName(opts.profile)
		if err != nil {
			return err
		}
	}
	// The server replays the target capture of a fresh session per
	// connection, at the paper's 10 ms cadence. Packet-level faults wrap
	// the source, stream-level faults wrap the connection. Each connection
	// draws a distinct deterministic sub-seed: replaying one identical
	// schedule would drop the same packets and cut the stream at the same
	// byte on every retry, so a reconnecting collector could never make
	// progress past a disconnect.
	var sourceSeq, connSeq atomic.Int64
	var monitorSeq atomic.Uint32
	cfg := transport.ServerConfig{
		Addr: opts.addr,
		NewSource: func() (transport.PacketSource, error) {
			longSc := sc
			longSc.Packets = 2048
			session, err := wimi.Simulate(longSc, opts.seed)
			if err != nil {
				return nil, err
			}
			var src transport.PacketSource
			if opts.monitor {
				// Quiet→target cycles with NIC-style monotonic sequence
				// numbers shared across connections, so a reconnecting
				// collector's dedupe never mistakes a cycle for a replay.
				src = &cycleSource{
					quiet:  session.Baseline.Packets[:150],
					target: session.Target.Packets[:400],
					seq:    &monitorSeq,
				}
			} else {
				src = transport.NewCaptureSource(&session.Target)
			}
			if opts.profile != "" {
				return faults.WrapSource(src, fp, opts.faultSeed+sourceSeq.Add(1))
			}
			return src, nil
		},
		NumAnt:   sc.NumAntennas,
		Carrier:  sc.Carrier,
		Interval: 10 * time.Millisecond,
	}
	if opts.profile != "" {
		cfg.WrapConn = func(c net.Conn) (net.Conn, error) {
			return faults.WrapConn(c, fp, opts.faultSeed+connSeq.Add(1))
		}
	}
	srv, err := transport.NewServer(cfg)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	if opts.profile != "" {
		fmt.Printf("serving %s CSI on %s with %q faults (ctrl-c to stop)\n",
			opts.liquid, srv.Addr(), opts.profile)
	} else {
		fmt.Printf("serving %s CSI on %s (ctrl-c to stop)\n", opts.liquid, srv.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	return nil
}

// cycleSource streams endless quiet→target cycles — a vessel repeatedly
// placed before the receiver and removed — restamping every packet with a
// fresh sequence number from a counter shared across connections.
type cycleSource struct {
	quiet  []csi.Packet
	target []csi.Packet
	next   int
	seq    *atomic.Uint32
}

func (cs *cycleSource) Next() (csi.Packet, error) {
	cycle := len(cs.quiet) + len(cs.target)
	i := cs.next % cycle
	var pkt csi.Packet
	if i < len(cs.quiet) {
		pkt = cs.quiet[i]
	} else {
		pkt = cs.target[i-len(cs.quiet)]
	}
	cs.next++
	pkt.Seq = cs.seq.Add(1)
	return pkt, nil
}

func collect(opts collectOptions) error {
	// Ctrl-c cancels the collection cleanly (partial capture is still
	// written); -timeout additionally bounds it, 0 meaning no limit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}
	col, err := transport.NewCollector(transport.CollectorConfig{
		Addr:           opts.addr,
		MaxPackets:     opts.packets,
		MaxRetries:     opts.retries,
		InitialBackoff: opts.backoff,
	})
	if err != nil {
		return err
	}
	fmt.Printf("collecting %d packets from %s...\n", opts.packets, opts.addr)
	capture, stats, runErr := col.Run(ctx)
	fmt.Printf("collected %d packets (%d antennas)\n", capture.Len(), capture.NumAntennas())
	if stats.Reconnects > 0 || stats.Duplicates > 0 || stats.CRCSkipped > 0 {
		fmt.Printf("survived: %d reconnects, %d duplicates dropped, %d corrupt records skipped\n",
			stats.Reconnects, stats.Duplicates, stats.CRCSkipped)
	}
	// Write whatever was collected even when the run failed or was
	// cancelled: a partial capture is still data.
	if opts.out != "" && capture.Len() > 0 {
		if err := writeTrace(opts.out, capture); err != nil {
			if runErr != nil {
				return fmt.Errorf("%w (and writing partial capture: %v)", runErr, err)
			}
			return err
		}
		fmt.Printf("wrote %s\n", opts.out)
	}
	return runErr
}

func writeTrace(path string, capture *wimi.Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f, capture.NumAntennas(), capture.Packets[0].Carrier)
	if err != nil {
		_ = f.Close()
		return err
	}
	if err := w.WriteCapture(capture); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
