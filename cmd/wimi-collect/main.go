// wimi-collect is the distributed collection demo: one process serves
// simulated CSI over TCP (the measurement node), another collects it and
// optionally writes a .csitrace file.
//
//	wimi-collect -mode serve -addr 127.0.0.1:9402 -liquid milk
//	wimi-collect -mode collect -addr 127.0.0.1:9402 -packets 20 -out milk.csitrace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
	"repro/wimi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-collect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wimi-collect", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "collect", "serve or collect")
		addr    = fs.String("addr", "127.0.0.1:9402", "server address")
		liquid  = fs.String("liquid", "pure-water", "liquid to serve (serve mode)")
		packets = fs.Int("packets", 20, "packets to collect (collect mode; 0 = until stream ends)")
		out     = fs.String("out", "", "optional .csitrace output (collect mode)")
		seed    = fs.Int64("seed", 1, "simulation seed (serve mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *mode {
	case "serve":
		return serve(*addr, *liquid, *seed)
	case "collect":
		return collect(*addr, *packets, *out)
	default:
		return fmt.Errorf("unknown mode %q (want serve or collect)", *mode)
	}
}

func serve(addr, liquid string, seed int64) error {
	sc := wimi.DefaultScenario()
	m, err := wimi.Liquid(liquid)
	if err != nil {
		return err
	}
	sc.Liquid = &m
	sc.Packets = 1 << 16 // effectively endless for a demo
	// The server replays the target capture of a fresh session per
	// connection, at the paper's 10 ms cadence.
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr: addr,
		NewSource: func() (transport.PacketSource, error) {
			longSc := sc
			longSc.Packets = 2048
			session, err := wimi.Simulate(longSc, seed)
			if err != nil {
				return nil, err
			}
			return transport.NewCaptureSource(&session.Target), nil
		},
		NumAnt:   sc.NumAntennas,
		Carrier:  sc.Carrier,
		Interval: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	fmt.Printf("serving %s CSI on %s (ctrl-c to stop)\n", liquid, srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	return nil
}

func collect(addr string, packets int, out string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fmt.Printf("collecting %d packets from %s...\n", packets, addr)
	capture, err := transport.Collect(ctx, addr, packets)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d packets (%d antennas)\n", capture.Len(), capture.NumAntennas())
	if out == "" || capture.Len() == 0 {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f, capture.NumAntennas(), capture.Packets[0].Carrier)
	if err != nil {
		_ = f.Close()
		return err
	}
	if err := w.WriteCapture(capture); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
