package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/wimi"
)

// gatewayMicroBenchmarks measures the gateway data plane end to end —
// client → gateway → serve backend and back, CRC-verified — so benchdiff
// gates relay latency alongside the serve micros. Entries:
//
//	BenchmarkGatewayRelay/single     one sequential relay per op through
//	                                 an unbatched gateway (the pr9-era
//	                                 data plane)
//	BenchmarkGatewayRelay/batched8   eight concurrent distinct requests
//	                                 per op through a -batch 8 gateway:
//	                                 they aggregate into upstream batch
//	                                 calls
//	BenchmarkGatewayRelay/coalesced  eight concurrent identical requests
//	                                 per op: one upstream call, seven
//	                                 coalesced followers
func gatewayMicroBenchmarks() []benchMicro {
	dir, err := os.MkdirTemp("", "wimi-gatewaybench")
	if err != nil {
		panic(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()

	modelPath := filepath.Join(dir, "model.json")
	session := trainServeModel(modelPath)
	bodies := [][]byte{encodeIdentifyRequest(session)}
	// Seven more distinct sessions so the batched micro relays distinct
	// content (distinct bodies = no coalescing, real upstream batches).
	m, err := wimi.Liquid(wimi.PureWater)
	if err != nil {
		panic(err)
	}
	sc := wimi.DefaultScenario()
	sc.Liquid = &m
	extra, err := wimi.SimulateTrials(sc, 7, 424_243)
	if err != nil {
		panic(err)
	}
	for _, s := range extra {
		bodies = append(bodies, encodeIdentifyRequest(s))
	}

	reg, err := registry.Open(modelPath)
	if err != nil {
		panic(err)
	}
	backend, err := serve.New(serve.Config{
		Registry:    reg,
		MaxBatch:    8,
		BatchWindow: time.Millisecond,
		QueueDepth:  256,
	})
	if err != nil {
		panic(err)
	}
	defer backend.Shutdown()
	backendTS := httptest.NewServer(backend.Handler())
	defer backendTS.Close()

	newGateway := func(batchMax int) (*gateway.Gateway, *httptest.Server) {
		g, err := gateway.New(gateway.Config{
			Backends:      []string{backendTS.URL},
			ProbeInterval: 50 * time.Millisecond,
			BatchMax:      batchMax,
			BatchLinger:   200 * time.Microsecond,
		})
		if err != nil {
			panic(err)
		}
		ts := httptest.NewServer(g.Handler())
		waitGatewayReady(ts.URL)
		return g, ts
	}
	post := func(client *http.Client, url string, body []byte) {
		resp, err := client.Post(url+"/v1/identify", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("gateway bench: status %d", resp.StatusCode))
		}
		_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
		_ = resp.Body.Close()
	}
	post8 := func(client *http.Client, url string, pick func(i int) []byte) {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				post(client, url, pick(i))
			}(i)
		}
		wg.Wait()
	}

	plain, plainTS := newGateway(1)
	plainClient := plainTS.Client()
	single := measureMicro("BenchmarkGatewayRelay/single", func() {
		post(plainClient, plainTS.URL, bodies[0])
	})
	plainTS.Close()
	plain.Close()

	batchedGW, batchedTS := newGateway(8)
	batchedClient := batchedTS.Client()
	batched := measureMicro("BenchmarkGatewayRelay/batched8", func() {
		post8(batchedClient, batchedTS.URL, func(i int) []byte { return bodies[i%len(bodies)] })
	})
	coalesced := measureMicro("BenchmarkGatewayRelay/coalesced", func() {
		post8(batchedClient, batchedTS.URL, func(int) []byte { return bodies[0] })
	})
	batchedTS.Close()
	batchedGW.Close()

	return []benchMicro{single, batched, coalesced}
}

// waitGatewayReady polls the gateway's readyz until its backend probe has
// landed, so the timed windows never include probe warm-up.
func waitGatewayReady(url string) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	panic("gateway bench: gateway never became ready")
}
