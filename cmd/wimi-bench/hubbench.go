package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/monitor"
	"repro/internal/monitorhub"
	"repro/internal/simulate"
)

// hubMicroBenchmarks measures the fleet-monitoring path end to end — one op
// drives 32 concurrent simulated streams through a monitor hub: per-packet
// change-point detection, sliding-window segmentation, pooled
// identification, verdict hysteresis, and drain. benchdiff gates the entry,
// so a regression in the per-stream hot path (a new allocation per packet,
// a lock turned contended) shows up as ns/op before it ships.
//
//	BenchmarkHubStreams/pass-32x240  one full quiet→target pass on each of
//	                                 32 streams, fed synchronously, drained
//	                                 to the last pending session
//	BenchmarkHubStreams/stride-heavy sustained re-identification: 8 streams
//	                                 with a long target dwell and a short
//	                                 stride (TargetLen 16, BaselineLen 40,
//	                                 Stride 4), so per-stride session
//	                                 emission + classification dominates —
//	                                 the steady state of a long-lived fleet
func hubMicroBenchmarks() []benchMicro {
	dir, err := os.MkdirTemp("", "wimi-hubbench")
	if err != nil {
		panic(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	modelPath := filepath.Join(dir, "model.json")
	trainServeModel(modelPath)
	id := registryActive(modelPath)

	// One read-only template per fixture liquid, shared across streams and
	// ops — the memory model wimi-hub uses for its simulated fleet. (The
	// serve fixture trains water/honey/oil; oil's contrast is too weak for
	// the detector, so the hub streams replay water and honey.)
	const quietLen, targetLen = 40, 200
	templates := make([][]csi.Packet, 0, 2)
	for li, name := range []string{material.PureWater, material.Honey} {
		sc := simulate.Default()
		m, err := material.PaperDatabase().Get(name)
		if err != nil {
			panic(err)
		}
		sc.Liquid = &m
		sc.Packets = quietLen + targetLen
		s, err := simulate.Session(sc, int64(300+li*17))
		if err != nil {
			panic(err)
		}
		tmpl := make([]csi.Packet, 0, quietLen+targetLen)
		tmpl = append(tmpl, s.Baseline.Packets[:quietLen]...)
		tmpl = append(tmpl, s.Target.Packets[:targetLen]...)
		templates = append(templates, tmpl)
	}

	// Longer-dwell templates for the stride-heavy variant: 60 quiet packets
	// so the frozen baseline reaches BaselineLen 40 past the detection
	// guard, then a 200-packet dwell the short stride re-identifies ~45
	// times per stream.
	const shQuiet, shTarget = 60, 200
	shTemplates := make([][]csi.Packet, 0, 2)
	for li, name := range []string{material.PureWater, material.Honey} {
		sc := simulate.Default()
		m, err := material.PaperDatabase().Get(name)
		if err != nil {
			panic(err)
		}
		sc.Liquid = &m
		sc.Packets = shTarget
		s, err := simulate.Session(sc, int64(700+li*23))
		if err != nil {
			panic(err)
		}
		tmpl := make([]csi.Packet, 0, shQuiet+shTarget)
		tmpl = append(tmpl, s.Baseline.Packets[:shQuiet]...)
		tmpl = append(tmpl, s.Target.Packets[:shTarget]...)
		shTemplates = append(shTemplates, tmpl)
	}

	const streams = 32
	pass := measureMicro("BenchmarkHubStreams/pass-32x240", func() {
		h, err := monitorhub.New(monitorhub.Config{
			Identifier: id,
			Monitor:    monitor.Config{BaselinePackets: 30},
		})
		if err != nil {
			panic(err)
		}
		feeds := make([]func(csi.Packet) error, streams)
		for i := 0; i < streams; i++ {
			feeds[i], err = h.RegisterFeed(fmt.Sprintf("s-%02d", i))
			if err != nil {
				panic(err)
			}
		}
		// Interleave the fleet packet-by-packet, the arrival order a real
		// hub sees, while the workers identify concurrently.
		for p := 0; p < quietLen+targetLen; p++ {
			for i := 0; i < streams; i++ {
				if err := feeds[i](templates[i%len(templates)][p]); err != nil {
					panic(err)
				}
			}
		}
		h.Close() // drains every pending identification
		t := h.Snapshot("", 0).Totals
		if t.Identified == 0 {
			panic("hub bench identified nothing")
		}
	})

	const shStreams = 8
	strideHeavy := measureMicro("BenchmarkHubStreams/stride-heavy", func() {
		h, err := monitorhub.New(monitorhub.Config{
			Identifier: id,
			Monitor:    monitor.Config{BaselinePackets: 30},
			Segment: monitor.SegmenterOptions{
				Settle: 5, TargetLen: 16, BaselineLen: 40, Stride: 4,
			},
			// Deep pending rings: every strided session is identified, none
			// shed, so one op is a fixed amount of classification work
			// regardless of how feed and worker goroutines interleave.
			PendingPerStream: 64,
		})
		if err != nil {
			panic(err)
		}
		feeds := make([]func(csi.Packet) error, shStreams)
		for i := 0; i < shStreams; i++ {
			feeds[i], err = h.RegisterFeed(fmt.Sprintf("sh-%02d", i))
			if err != nil {
				panic(err)
			}
		}
		for p := 0; p < shQuiet+shTarget; p++ {
			for i := 0; i < shStreams; i++ {
				if err := feeds[i](shTemplates[i%len(shTemplates)][p]); err != nil {
					panic(err)
				}
			}
		}
		h.Close()
		t := h.Snapshot("", 0).Totals
		if t.Identified < shStreams {
			panic("stride-heavy hub bench identified too little")
		}
	})
	return []benchMicro{pass, strideHeavy}
}
