package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/dsp"
	"repro/internal/dwt"
	"repro/internal/experiment"
	"repro/internal/svm"
)

// benchReport is the schema of a -bench-json record. cmd/benchdiff compares
// two of these and fails on regressions, so the fields it gates on
// (total_wall_ns, experiments[].wall_ns, micro[].ns_per_op) must stay stable.
type benchReport struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Trials     int               `json:"trials"`
	Splits     int               `json:"splits"`
	Seed       int64             `json:"seed"`
	Workers    int               `json:"workers"`
	Parallel   int               `json:"parallel"`
	TotalWall  int64             `json:"total_wall_ns"`
	Experiment []benchExperiment `json:"experiments"`
	Micro      []benchMicro      `json:"micro"`
}

type benchExperiment struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`
}

type benchMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func buildBenchReport(opt experiment.Options, parallel int, total time.Duration, timings []expTiming, micro []benchMicro) benchReport {
	trials, splits, seed := opt.Trials, opt.SplitSeeds, opt.BaseSeed
	if trials == 0 {
		trials = 20
	}
	if splits == 0 {
		splits = 3
	}
	if seed == 0 {
		seed = 1
	}
	rep := benchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Trials:     trials,
		Splits:     splits,
		Seed:       seed,
		Workers:    opt.Workers,
		Parallel:   parallel,
		TotalWall:  total.Nanoseconds(),
		Micro:      micro,
	}
	for _, t := range timings {
		rep.Experiment = append(rep.Experiment, benchExperiment{Name: t.name, WallNs: t.elapsed.Nanoseconds()})
	}
	return rep
}

func writeBenchJSON(path string, rep benchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding benchmark record: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing benchmark record: %w", err)
	}
	return nil
}

// microBenchTime is how long each component microbenchmark samples. Long
// enough to average over GC cycles, short enough that -bench-json stays a
// sub-second add-on to the full run.
var microBenchTime = 250 * time.Millisecond

// measureMicro times fn in a tight loop for roughly microBenchTime and
// reports per-operation wall time and allocation statistics (the same
// counters testing.B uses, read from runtime.MemStats).
func measureMicro(name string, fn func()) benchMicro {
	fn() // warm caches and pools before the timed window
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var iters int64
	for time.Since(start) < microBenchTime {
		fn()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchMicro{
		Name:        name,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
}

// microBenchmarks exercises the three hot components the allocation
// overhaul targeted: the FFT plan (power-of-two and Bluestein sizes), the
// pooled wavelet-correlation denoiser, and Gram-cached SVM training.
func microBenchmarks() []benchMicro {
	rng := rand.New(rand.NewSource(99))

	fftSignal := func(n int) []complex128 {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return x
	}
	src64, dst64 := fftSignal(64), make([]complex128, 64)
	plan64 := dsp.NewPlan(64)
	src90, dst90 := fftSignal(90), make([]complex128, 90)
	plan90 := dsp.NewPlan(90)

	noisy := make([]float64, 300)
	for i := range noisy {
		noisy[i] = rng.NormFloat64()
		if i%37 == 0 {
			noisy[i] += 25 // impulses, so the suppress loop does real work
		}
	}

	var x [][]float64
	var labels []string
	classes := []string{"water", "honey", "oil", "milk"}
	for ci, c := range classes {
		for s := 0; s < 12; s++ {
			v := make([]float64, 8)
			for d := range v {
				v[d] = float64(ci) + 0.3*rng.NormFloat64()
			}
			x = append(x, v)
			labels = append(labels, c)
		}
	}

	micro := []benchMicro{
		measureMicro("fft-plan-transform-64", func() {
			plan64.Transform(dst64, src64)
		}),
		measureMicro("fft-plan-transform-bluestein-90", func() {
			plan90.Transform(dst90, src90)
		}),
		measureMicro("dwt-correlation-denoise-300", func() {
			if _, err := dwt.CorrelationDenoise(noisy, &dwt.DenoiseConfig{Wavelet: dwt.DB4}); err != nil {
				panic(err)
			}
		}),
		measureMicro("svm-train-multiclass", func() {
			if _, err := svm.TrainMulticlass(x, labels, svm.RBFKernel{Gamma: 0.5}, svm.Config{C: 10, Seed: 1}); err != nil {
				panic(err)
			}
		}),
		measureMicro("svm-autotune", func() {
			// A reduced 2×2 (C, γ) grid over 3 folds: the same shape as the
			// AutoTune path behind core.IdentifierConfig, sized to keep one
			// op in the low milliseconds.
			tuneGrid := []svm.GridPoint{
				{C: 1, Gamma: 0.2}, {C: 1, Gamma: 1},
				{C: 10, Gamma: 0.2}, {C: 10, Gamma: 1},
			}
			if _, err := svm.TuneRBF(x, labels, tuneGrid, 3, 1, 0); err != nil {
				panic(err)
			}
		}),
	}
	micro = append(micro, svmPredictMicros(x, labels)...)
	micro = append(micro, serveMicroBenchmarks()...)
	micro = append(micro, gatewayMicroBenchmarks()...)
	return append(micro, hubMicroBenchmarks()...)
}

// svmPredictMicros isolates the classifier stage the serve batch path
// rides on: eight queries classified one at a time versus one blocked
// PredictBatch call over the deduplicated support-vector pool. Both use
// caller-owned scratch, so the numbers are pure kernel arithmetic.
func svmPredictMicros(x [][]float64, labels []string) []benchMicro {
	model, err := svm.TrainMulticlass(x, labels, svm.RBFKernel{Gamma: 0.5}, svm.Config{C: 10, Seed: 1})
	if err != nil {
		panic(err)
	}
	// One query per class plus repeats, like a mixed micro-batch.
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = x[(i*len(x)/8+i)%len(x)]
	}
	var psc svm.PredictScratch
	var bsc svm.BatchScratch
	seq := measureMicro("svm-predict-seq8", func() {
		for _, q := range queries {
			model.PredictWithConfidenceScratch(q, &psc)
		}
	})
	batch := measureMicro("svm-predict-batch8", func() {
		model.PredictBatch(queries, &bsc)
	})
	return []benchMicro{seq, batch}
}
