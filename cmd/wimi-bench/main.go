// wimi-bench regenerates the paper's evaluation: every figure of Sec. V
// plus the design-choice ablations. Run one experiment or all of them:
//
//	wimi-bench -experiment fig15
//	wimi-bench -experiment all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wimi-bench", flag.ContinueOnError)
	var (
		name     = fs.String("experiment", "all", "experiment name (figN, ablation-*) or 'all'")
		trials   = fs.Int("trials", 0, "trials per class (0 = paper default of 20)")
		splits   = fs.Int("splits", 0, "train/test splits to average (0 = default 3)")
		seed     = fs.Int64("seed", 0, "base random seed (0 = default 1)")
		markdown = fs.String("markdown", "", "also write a markdown report to this path")
		parallel = fs.Int("parallel", 1, "experiments to run concurrently (experiment 'all' only)")
		list     = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	all := experiment.Registry()
	if *list {
		for _, n := range experiment.SortedNames(all) {
			fmt.Println(n)
		}
		return nil
	}
	opt := experiment.Options{Trials: *trials, SplitSeeds: *splits, BaseSeed: *seed}
	var report *reportWriter
	if *markdown != "" {
		var err error
		report, err = newReportWriter(*markdown, opt)
		if err != nil {
			return err
		}
		defer func() {
			if err := report.close(); err != nil {
				fmt.Fprintln(os.Stderr, "wimi-bench: closing report:", err)
			}
		}()
	}
	if *name != "all" {
		r, ok := all[strings.ToLower(*name)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *name)
		}
		return runOne(*name, r, opt, report)
	}
	names := experiment.SortedNames(all)
	if *parallel <= 1 {
		for _, n := range names {
			if err := runOne(n, all[n], opt, report); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	return runParallel(names, all, opt, report, *parallel)
}

// runParallel executes experiments on a bounded worker pool. Results are
// printed (and reported) in the canonical order regardless of completion
// order — every experiment is an independent, deterministic computation.
func runParallel(names []string, all map[string]experiment.Runner, opt experiment.Options, report *reportWriter, workers int) error {
	type outcome struct {
		body    string
		elapsed time.Duration
		err     error
	}
	results := make([]outcome, len(names))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			res, err := all[name](opt)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			results[i] = outcome{body: res.String(), elapsed: time.Since(start).Round(time.Millisecond)}
		}(i, n)
	}
	wg.Wait()
	for i, n := range names {
		if results[i].err != nil {
			return fmt.Errorf("%s: %w", n, results[i].err)
		}
		fmt.Println(results[i].body)
		fmt.Printf("[%s completed in %v]\n\n", n, results[i].elapsed)
		if report != nil {
			if err := report.add(n, results[i].body, results[i].elapsed); err != nil {
				return fmt.Errorf("writing report: %w", err)
			}
		}
	}
	return nil
}

func runOne(name string, r experiment.Runner, opt experiment.Options, report *reportWriter) error {
	start := time.Now()
	res, err := r(opt)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	fmt.Println(res)
	fmt.Printf("[%s completed in %v]\n\n", name, elapsed)
	if report != nil {
		if err := report.add(name, res.String(), elapsed); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
	}
	return nil
}

// reportWriter accumulates a markdown run record.
type reportWriter struct {
	f *os.File
}

func newReportWriter(path string, opt experiment.Options) (*reportWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("creating report %s: %w", path, err)
	}
	trials, splitSeeds, seed := opt.Trials, opt.SplitSeeds, opt.BaseSeed
	if trials == 0 {
		trials = 20
	}
	if splitSeeds == 0 {
		splitSeeds = 3
	}
	if seed == 0 {
		seed = 1
	}
	_, err = fmt.Fprintf(f, "# WiMi experiment run\n\nOptions: %d trials per class, %d splits, base seed %d.\n\n",
		trials, splitSeeds, seed)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return &reportWriter{f: f}, nil
}

func (rw *reportWriter) add(name, body string, elapsed time.Duration) error {
	_, err := fmt.Fprintf(rw.f, "## %s\n\n```\n%s```\n\n_completed in %v_\n\n", name, body, elapsed)
	return err
}

func (rw *reportWriter) close() error {
	return rw.f.Close()
}
