// wimi-bench regenerates the paper's evaluation: every figure of Sec. V
// plus the design-choice ablations. Run one experiment or all of them:
//
//	wimi-bench -experiment fig15
//	wimi-bench -experiment all
//
// With -bench-json the run also writes a machine-readable benchmark record
// (wall time per experiment plus component microbenchmarks) that
// cmd/benchdiff can compare against an earlier record to catch performance
// regressions.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-bench:", err)
		os.Exit(1)
	}
}

// expTiming records one experiment's wall time for the -bench-json output.
type expTiming struct {
	name    string
	elapsed time.Duration
}

func run(args []string) error {
	fs := flag.NewFlagSet("wimi-bench", flag.ContinueOnError)
	var (
		name       = fs.String("experiment", "all", "experiment name (figN, ablation-*) or 'all'")
		trials     = fs.Int("trials", 0, "trials per class (0 = paper default of 20)")
		splits     = fs.Int("splits", 0, "train/test splits to average (0 = default 3)")
		seed       = fs.Int64("seed", 0, "base random seed (0 = default 1)")
		markdown   = fs.String("markdown", "", "also write a markdown report to this path")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "experiments to run concurrently (experiment 'all' only)")
		workers    = fs.Int("workers", 0, "worker pool size inside each experiment (0 = GOMAXPROCS); results are identical at any setting")
		benchJSON  = fs.String("bench-json", "", "write a benchmark record (per-experiment wall time + component microbenchmarks) to this JSON path")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this path (inspect with go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile to this path when the run finishes")
		list       = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	all := experiment.Registry()
	if *list {
		for _, n := range experiment.SortedNames(all) {
			fmt.Println(n)
		}
		return nil
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("starting cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "wimi-bench: closing cpu profile:", err)
			}
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			if err := writeHeapProfile(path); err != nil {
				fmt.Fprintln(os.Stderr, "wimi-bench:", err)
			}
		}()
	}
	opt := experiment.Options{Trials: *trials, SplitSeeds: *splits, BaseSeed: *seed, Workers: *workers}
	var report *reportWriter
	if *markdown != "" {
		var err error
		report, err = newReportWriter(*markdown, opt)
		if err != nil {
			return err
		}
		defer func() {
			if err := report.close(); err != nil {
				fmt.Fprintln(os.Stderr, "wimi-bench: closing report:", err)
			}
		}()
	}
	start := time.Now()
	var timings []expTiming
	switch {
	case *name != "all":
		r, ok := all[strings.ToLower(*name)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *name)
		}
		elapsed, err := runOne(*name, r, opt, report)
		if err != nil {
			return err
		}
		timings = []expTiming{{*name, elapsed}}
	case *parallel <= 1:
		for _, n := range experiment.SortedNames(all) {
			elapsed, err := runOne(n, all[n], opt, report)
			if err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			timings = append(timings, expTiming{n, elapsed})
		}
	default:
		var err error
		timings, err = runParallel(experiment.SortedNames(all), all, opt, report, *parallel)
		if err != nil {
			return err
		}
	}
	if *benchJSON != "" {
		rep := buildBenchReport(opt, *parallel, time.Since(start), timings, microBenchmarks())
		if err := writeBenchJSON(*benchJSON, rep); err != nil {
			return err
		}
		fmt.Printf("[benchmark record written to %s]\n", *benchJSON)
	}
	return nil
}

// writeHeapProfile snapshots the heap (after a forced GC, so the profile
// shows live objects rather than garbage awaiting collection) to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("writing heap profile: %w", err)
	}
	return f.Close()
}

// runParallel executes experiments on a bounded worker pool. Output streams
// in the canonical order: each experiment is printed (and reported) as soon
// as it and all of its predecessors have finished, regardless of completion
// order — every experiment is an independent, deterministic computation.
func runParallel(names []string, all map[string]experiment.Runner, opt experiment.Options, report *reportWriter, workers int) ([]expTiming, error) {
	type outcome struct {
		body    string
		elapsed time.Duration
		err     error
	}
	results := make([]outcome, len(names))
	done := make([]chan struct{}, len(names))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			res, err := all[name](opt)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			results[i] = outcome{body: res.String(), elapsed: time.Since(start).Round(time.Millisecond)}
		}(i, n)
	}
	defer wg.Wait()
	timings := make([]expTiming, 0, len(names))
	for i, n := range names {
		<-done[i]
		if results[i].err != nil {
			return nil, fmt.Errorf("%s: %w", n, results[i].err)
		}
		fmt.Println(results[i].body)
		fmt.Printf("[%s completed in %v]\n\n", n, results[i].elapsed)
		if report != nil {
			if err := report.add(n, results[i].body, results[i].elapsed); err != nil {
				return nil, fmt.Errorf("writing report: %w", err)
			}
		}
		timings = append(timings, expTiming{n, results[i].elapsed})
	}
	return timings, nil
}

func runOne(name string, r experiment.Runner, opt experiment.Options, report *reportWriter) (time.Duration, error) {
	start := time.Now()
	res, err := r(opt)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	fmt.Println(res)
	fmt.Printf("[%s completed in %v]\n\n", name, elapsed)
	if report != nil {
		if err := report.add(name, res.String(), elapsed); err != nil {
			return 0, fmt.Errorf("writing report: %w", err)
		}
	}
	return elapsed, nil
}

// reportWriter accumulates a markdown run record.
type reportWriter struct {
	f *os.File
}

func newReportWriter(path string, opt experiment.Options) (*reportWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("creating report %s: %w", path, err)
	}
	trials, splitSeeds, seed := opt.Trials, opt.SplitSeeds, opt.BaseSeed
	if trials == 0 {
		trials = 20
	}
	if splitSeeds == 0 {
		splitSeeds = 3
	}
	if seed == 0 {
		seed = 1
	}
	_, err = fmt.Fprintf(f, "# WiMi experiment run\n\nOptions: %d trials per class, %d splits, base seed %d.\n\n",
		trials, splitSeeds, seed)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return &reportWriter{f: f}, nil
}

func (rw *reportWriter) add(name, body string, elapsed time.Duration) error {
	_, err := fmt.Fprintf(rw.f, "## %s\n\n```\n%s```\n\n_completed in %v_\n\n", name, body, elapsed)
	return err
}

func (rw *reportWriter) close() error {
	return rw.f.Close()
}
