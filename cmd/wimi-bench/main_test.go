package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
)

func TestSortedNamesOrdering(t *testing.T) {
	names := experiment.SortedNames(experiment.Registry())
	// Figures come first, in numeric order.
	var figIdx []int
	for i, n := range names {
		if strings.HasPrefix(n, "fig") {
			figIdx = append(figIdx, i)
		}
	}
	if len(figIdx) != 17 {
		t.Fatalf("%d figure experiments, want 17", len(figIdx))
	}
	for i := 1; i < len(figIdx); i++ {
		if figIdx[i] != figIdx[i-1]+1 {
			t.Fatal("figures not contiguous at the front")
		}
	}
	if names[0] != "fig2" || names[1] != "fig3" || names[2] != "fig6" {
		t.Errorf("figure order wrong: %v", names[:3])
	}
	// Ablations alphabetical after figures.
	rest := names[len(figIdx):]
	for i := 1; i < len(rest); i++ {
		if rest[i-1] >= rest[i] {
			t.Errorf("non-figure experiments not sorted: %q >= %q", rest[i-1], rest[i])
		}
	}
}

func TestRunSingleExperimentWithReport(t *testing.T) {
	report := filepath.Join(t.TempDir(), "report.md")
	err := run([]string{"-experiment", "fig2", "-markdown", report})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "## fig2") || !strings.Contains(out, "Fig 2") {
		t.Errorf("report missing content:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestEveryExperimentRegistered(t *testing.T) {
	all := experiment.Registry()
	// Every paper figure with an evaluation number must be present.
	for _, fig := range []string{
		"fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21",
	} {
		if _, ok := all[fig]; !ok {
			t.Errorf("experiment %s not registered", fig)
		}
	}
	// And the runners must actually work with cheap options.
	opt := experiment.Options{Trials: 4, SplitSeeds: 1, BaseSeed: 1}
	for _, name := range []string{"fig2", "fig3", "fig6", "fig7"} {
		if _, err := all[name](opt); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunParallelMatchesSerialOrder(t *testing.T) {
	// A cheap subset in parallel: output order must stay canonical and the
	// report must contain every experiment.
	report := filepath.Join(t.TempDir(), "par.md")
	err := run([]string{
		"-experiment", "all", "-parallel", "4",
		"-trials", "3", "-splits", "1", "-markdown", report,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	// Canonical order: fig2 before fig15 before ablations before extensions.
	i2 := strings.Index(out, "## fig2\n")
	i15 := strings.Index(out, "## fig15")
	iAbl := strings.Index(out, "## ablation-")
	iExt := strings.Index(out, "## ext-")
	if i2 < 0 || i15 < 0 || iAbl < 0 || iExt < 0 {
		t.Fatalf("report missing sections (fig2=%d fig15=%d abl=%d ext=%d)", i2, i15, iAbl, iExt)
	}
	if !(i2 < i15 && i15 < iAbl && iAbl < iExt) {
		t.Errorf("report out of canonical order: fig2=%d fig15=%d abl=%d ext=%d", i2, i15, iAbl, iExt)
	}
}

func TestBenchJSONRecord(t *testing.T) {
	old := microBenchTime
	microBenchTime = 2 * time.Millisecond
	defer func() { microBenchTime = old }()
	path := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-experiment", "fig7", "-trials", "3", "-splits", "1",
		"-workers", "2", "-bench-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if len(rep.Experiment) != 1 || rep.Experiment[0].Name != "fig7" {
		t.Fatalf("experiments = %+v, want exactly fig7", rep.Experiment)
	}
	if rep.TotalWall <= 0 || rep.Experiment[0].WallNs < 0 {
		t.Errorf("non-positive wall times: total=%d fig7=%d", rep.TotalWall, rep.Experiment[0].WallNs)
	}
	if rep.Trials != 3 || rep.Splits != 1 || rep.Workers != 2 {
		t.Errorf("options not recorded: %+v", rep)
	}
	if len(rep.Micro) != 16 {
		t.Fatalf("%d microbenchmarks, want 16 (5 component + 2 predict + 4 serve + 3 gateway + 2 hub)", len(rep.Micro))
	}
	for _, m := range rep.Micro {
		if m.NsPerOp <= 0 {
			t.Errorf("micro %s has ns/op %v", m.Name, m.NsPerOp)
		}
	}
	// The serving path must be in the record so benchdiff gates it.
	serveNames := map[string]bool{}
	for _, m := range rep.Micro {
		serveNames[m.Name] = true
	}
	for _, want := range []string{
		"core-identify-pooled",
		"svm-predict-seq8", "svm-predict-batch8",
		"BenchmarkServeIdentify/single",
		"BenchmarkServeIdentify/batched8",
		"BenchmarkServeIdentify/batched8-cold",
		"BenchmarkGatewayRelay/single",
		"BenchmarkGatewayRelay/batched8",
		"BenchmarkGatewayRelay/coalesced",
		"BenchmarkHubStreams/pass-32x240",
		"BenchmarkHubStreams/stride-heavy",
	} {
		if !serveNames[want] {
			t.Errorf("micro record is missing %s", want)
		}
	}
	// The FFT plan transform must stay allocation-free in steady state —
	// the same guarantee TestPlanTransformZeroAllocs pins, re-checked here
	// on the shipped measurement path.
	for _, m := range rep.Micro[:2] {
		if m.AllocsPerOp > 0.5 {
			t.Errorf("micro %s allocates %.2f per op, want 0", m.Name, m.AllocsPerOp)
		}
	}
}
