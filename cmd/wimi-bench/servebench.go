package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/wimi"
)

// serveMicroBenchmarks measures the online serving path end to end — HTTP
// round-trip, trace decode, pipeline, classification — so benchdiff gates
// serving latency alongside the component benches. Two entries:
//
//	BenchmarkServeIdentify/single   one sequential request per op
//	BenchmarkServeIdentify/batched8 eight concurrent requests per op,
//	                                coalesced by the micro-batch executor
func serveMicroBenchmarks() []benchMicro {
	dir, err := os.MkdirTemp("", "wimi-servebench")
	if err != nil {
		panic(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()

	modelPath := filepath.Join(dir, "model.json")
	session := trainServeModel(modelPath)
	reg, err := registry.Open(modelPath)
	if err != nil {
		panic(err)
	}
	s, err := serve.New(serve.Config{
		Registry:    reg,
		MaxBatch:    8,
		BatchWindow: time.Millisecond,
		QueueDepth:  256,
	})
	if err != nil {
		panic(err)
	}
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := encodeIdentifyRequest(session)
	post := func(client *http.Client) {
		resp, err := client.Post(ts.URL+"/v1/identify", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("serve bench: status %d", resp.StatusCode))
		}
		_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
		_ = resp.Body.Close()
	}

	// The inference floor under the HTTP numbers: one warmed pipeline
	// running session → Ω verdict with zero steady-state allocation.
	id := reg.Active().Identifier
	pl := core.NewPipeline()
	if _, err := id.IdentifyDetailedP(pl, session); err != nil {
		panic(err)
	}
	pooled := measureMicro("core-identify-pooled", func() {
		if _, err := id.IdentifyDetailedP(pl, session); err != nil {
			panic(err)
		}
	})

	client := ts.Client()
	single := measureMicro("BenchmarkServeIdentify/single", func() {
		post(client)
	})
	batched := measureMicro("BenchmarkServeIdentify/batched8", func() {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				post(client)
			}()
		}
		wg.Wait()
	})
	return []benchMicro{pooled, single, batched}
}

// trainServeModel trains a small three-liquid identifier, persists it to
// path, and returns one training session for request bodies.
func trainServeModel(path string) *wimi.Session {
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.PureWater, wimi.Honey, wimi.Oil} {
		m, err := wimi.Liquid(name)
		if err != nil {
			panic(err)
		}
		sc := wimi.DefaultScenario()
		sc.Liquid = &m
		set, err := wimi.SimulateTrials(sc, 4, int64(li)*1_000_003+1)
		if err != nil {
			panic(err)
		}
		for _, s := range set {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		panic(err)
	}
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := wimi.SaveIdentifier(id, f); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	return sessions[0]
}

// encodeIdentifyRequest renders a session as the /v1/identify wire format.
func encodeIdentifyRequest(s *wimi.Session) []byte {
	encode := func(c *wimi.Capture) []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, c.NumAntennas(), s.Carrier)
		if err != nil {
			panic(err)
		}
		if err := w.WriteCapture(c); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	body, err := json.Marshal(map[string][]byte{
		"baseline": encode(&s.Baseline),
		"target":   encode(&s.Target),
	})
	if err != nil {
		panic(err)
	}
	return body
}
