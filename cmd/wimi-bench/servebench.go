package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/wimi"
)

// serveMicroBenchmarks measures the online serving path end to end — HTTP
// round-trip, trace decode, pipeline, classification — so benchdiff gates
// serving latency alongside the component benches. Entries:
//
//	BenchmarkServeIdentify/single        one sequential request per op
//	                                     (verdict cache off)
//	BenchmarkServeIdentify/batched8      eight concurrent requests of one
//	                                     replayed capture per op against a
//	                                     verdict-cache-enabled server — the
//	                                     monitoring-replay scenario the
//	                                     cache exists for, and the headline
//	                                     gate
//	BenchmarkServeIdentify/batched8-cold the same eight concurrent posts
//	                                     with the cache off: every op pays
//	                                     decode + DSP + blocked batch
//	                                     classification
func serveMicroBenchmarks() []benchMicro {
	dir, err := os.MkdirTemp("", "wimi-servebench")
	if err != nil {
		panic(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()

	modelPath := filepath.Join(dir, "model.json")
	session := trainServeModel(modelPath)
	body := encodeIdentifyRequest(session)
	newServer := func(verdictCache int) (*serve.Server, *httptest.Server) {
		reg, err := registry.Open(modelPath)
		if err != nil {
			panic(err)
		}
		s, err := serve.New(serve.Config{
			Registry:     reg,
			MaxBatch:     8,
			BatchWindow:  time.Millisecond,
			QueueDepth:   256,
			VerdictCache: verdictCache,
		})
		if err != nil {
			panic(err)
		}
		return s, httptest.NewServer(s.Handler())
	}
	post := func(client *http.Client, url string) {
		resp, err := client.Post(url+"/v1/identify", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("serve bench: status %d", resp.StatusCode))
		}
		_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
		_ = resp.Body.Close()
	}
	post8 := func(client *http.Client, url string) {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				post(client, url)
			}()
		}
		wg.Wait()
	}

	cold, coldTS := newServer(0)
	defer cold.Shutdown()
	defer coldTS.Close()

	// The inference floor under the HTTP numbers: one warmed pipeline
	// running session → Ω verdict with zero steady-state allocation.
	id := registryActive(modelPath)
	pl := core.NewPipeline()
	if _, err := id.IdentifyDetailedP(pl, session); err != nil {
		panic(err)
	}
	pooled := measureMicro("core-identify-pooled", func() {
		if _, err := id.IdentifyDetailedP(pl, session); err != nil {
			panic(err)
		}
	})

	coldClient := coldTS.Client()
	single := measureMicro("BenchmarkServeIdentify/single", func() {
		post(coldClient, coldTS.URL)
	})
	batchedCold := measureMicro("BenchmarkServeIdentify/batched8-cold", func() {
		post8(coldClient, coldTS.URL)
	})

	cached, cachedTS := newServer(64)
	defer cached.Shutdown()
	defer cachedTS.Close()
	cachedClient := cachedTS.Client()
	batched := measureMicro("BenchmarkServeIdentify/batched8", func() {
		post8(cachedClient, cachedTS.URL)
	})
	return []benchMicro{pooled, single, batched, batchedCold}
}

// registryActive opens the model fresh and returns its identifier, so the
// pooled-pipeline micro measures the same model the servers load.
func registryActive(modelPath string) *core.Identifier {
	reg, err := registry.Open(modelPath)
	if err != nil {
		panic(err)
	}
	return reg.Active().Identifier
}

// trainServeModel trains a small three-liquid identifier, persists it to
// path, and returns one training session for request bodies.
func trainServeModel(path string) *wimi.Session {
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.PureWater, wimi.Honey, wimi.Oil} {
		m, err := wimi.Liquid(name)
		if err != nil {
			panic(err)
		}
		sc := wimi.DefaultScenario()
		sc.Liquid = &m
		set, err := wimi.SimulateTrials(sc, 4, int64(li)*1_000_003+1)
		if err != nil {
			panic(err)
		}
		for _, s := range set {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		panic(err)
	}
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := wimi.SaveIdentifier(id, f); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	return sessions[0]
}

// encodeIdentifyRequest renders a session as the /v1/identify wire format.
func encodeIdentifyRequest(s *wimi.Session) []byte {
	encode := func(c *wimi.Capture) []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, c.NumAntennas(), s.Carrier)
		if err != nil {
			panic(err)
		}
		if err := w.WriteCapture(c); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	body, err := json.Marshal(map[string][]byte{
		"baseline": encode(&s.Baseline),
		"target":   encode(&s.Target),
	})
	if err != nil {
		panic(err)
	}
	return body
}
