package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/wimi"
)

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil || !strings.Contains(err.Error(), "-model") {
		t.Errorf("missing -model: %v", err)
	}
	if err := run([]string{"-model", "/does/not/exist.json"}, os.Stdout); err == nil {
		t.Error("missing model file should error")
	}
	if err := run([]string{"-not-a-flag"}, os.Stdout); err == nil {
		t.Error("bad flag should error")
	}
	model := trainFixtureModel(t)
	if err := run([]string{"-model", model, "-queue", "-1"}, os.Stdout); err == nil {
		t.Error("negative queue depth should error")
	}
	if err := run([]string{"-model", model, "-addr", "not-an-addr:xx"}, os.Stdout); err == nil {
		t.Error("bad listen address should error")
	}
}

// trainFixtureModel trains a tiny model and saves it under t.TempDir.
func trainFixtureModel(t *testing.T) string {
	t.Helper()
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.PureWater, wimi.Honey} {
		m, err := wimi.Liquid(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := wimi.DefaultScenario()
		sc.Liquid = &m
		set, err := wimi.SimulateTrials(sc, 4, int64(li)*1_000_003+1)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range set {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wimi.SaveIdentifier(id, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// requestBody renders one honey session as the /v1/identify wire format.
func requestBody(t *testing.T) []byte {
	t.Helper()
	m, err := wimi.Liquid(wimi.Honey)
	if err != nil {
		t.Fatal(err)
	}
	sc := wimi.DefaultScenario()
	sc.Liquid = &m
	session, err := wimi.Simulate(sc, 1_000_004)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(c *wimi.Capture) []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, c.NumAntennas(), session.Carrier)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteCapture(c); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	body, err := json.Marshal(map[string][]byte{
		"baseline": encode(&session.Baseline),
		"target":   encode(&session.Target),
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestServeSmoke is the full binary-level smoke test behind `make
// serve-smoke`: build wimi-serve, start it on a random port with a
// fixture model, fire a scripted request, assert the JSON response, and
// shut it down gracefully.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "wimi-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	model := trainFixtureModel(t)

	proc := exec.Command(bin, "-addr", "127.0.0.1:0", "-model", model, "-pprof", "127.0.0.1:0")
	stdout, err := proc.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	proc.Stderr = os.Stderr
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proc.Process.Kill() }()

	// The daemon announces its bound addresses on stdout: the opt-in pprof
	// listener first, then the service address.
	scanner := bufio.NewScanner(stdout)
	addr, pprofURL := "", ""
	deadline := time.After(30 * time.Second)
	lineCh := make(chan string, 16)
	go func() {
		for scanner.Scan() {
			lineCh <- scanner.Text()
		}
		close(lineCh)
	}()
scan:
	for {
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatal("wimi-serve exited before announcing its address")
			}
			if _, rest, found := strings.Cut(line, "pprof on "); found {
				pprofURL = strings.Fields(rest)[0]
			}
			if _, rest, found := strings.Cut(line, "listening on "); found {
				addr = strings.Fields(rest)[0]
				break scan
			}
		case <-deadline:
			t.Fatal("timed out waiting for wimi-serve to listen")
		}
	}
	if pprofURL == "" {
		t.Fatal("wimi-serve did not announce its -pprof listener")
	}

	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	// The pprof index must answer on its own listener, and the profile
	// endpoints must NOT be reachable through the service port.
	resp, err = client.Get(pprofURL)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
	resp, err = client.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof handlers leaked onto the service address")
	}

	resp, err = client.Post(base+"/v1/identify", "application/json", bytes.NewReader(requestBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Material     string  `json:"material"`
		Omega        float64 `json:"omega"`
		Confidence   float64 `json:"confidence"`
		ModelVersion string  `json:"modelVersion"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identify: status %d (%+v)", resp.StatusCode, out)
	}
	if out.Material != wimi.Honey {
		t.Errorf("identified %q, want %q", out.Material, wimi.Honey)
	}
	if out.Confidence <= 0 || out.Confidence > 1 {
		t.Errorf("confidence %v out of (0,1]", out.Confidence)
	}
	if !strings.HasPrefix(out.ModelVersion, "sha256:") {
		t.Errorf("model version %q", out.ModelVersion)
	}

	// SIGHUP hot-reloads (same content: version must not change).
	if err := proc.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}

	// Graceful shutdown on SIGTERM with exit 0.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wimi-serve exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("wimi-serve did not drain within 15s of SIGTERM")
	}
	fmt.Println("serve-smoke: ok")
}
