// wimi-serve is the online identification daemon: it loads a trained
// model from a versioned registry (a model file or a directory of model
// files) and answers identification requests over HTTP/JSON with request
// micro-batching, bounded admission (429 + Retry-After when saturated),
// per-request deadlines and graceful drain on SIGINT/SIGTERM. SIGHUP (or
// POST /v1/reload) hot-swaps the model without dropping in-flight
// requests.
//
// Offline→online workflow:
//
//	wimi-sim -save-model /models/lab.json        # train offline, persist
//	wimi-serve -model /models/lab.json           # serve identifications
//	curl -d @request.json localhost:8077/v1/identify
//
// Endpoints:
//
//	POST /v1/identify  {baseline, target}  → {material, omega, confidence, modelVersion}
//	POST /v1/reload    re-resolve + hot-swap the model
//	GET  /v1/model     active model version + history
//	GET  /healthz      liveness
//	GET  /readyz       readiness (model loaded, not draining) + stats
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/registry"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wimi-serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8077", "listen address (port 0 picks a free port)")
		modelPath   = fs.String("model", "", "model file or directory of model files (required)")
		queueDepth  = fs.Int("queue", 64, "admission queue depth; beyond it requests shed with 429")
		maxBatch    = fs.Int("batch", 8, "max requests coalesced into one batch")
		batchWindow = fs.Duration("batch-window", 2*time.Millisecond, "how long a non-full batch waits for company")
		deadline    = fs.Duration("deadline", 10*time.Second, "per-request deadline (queueing + pipeline)")
		workers     = fs.Int("workers", 0, "pipeline workers per batch (0 = GOMAXPROCS)")
		drainWait   = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
		vcache      = fs.Int("verdict-cache", 0, "verdict-cache entries: identical captures replayed against the same model answer without re-running the pipeline (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required (train one with: wimi-sim -save-model model.json)")
	}
	reg, err := registry.Open(*modelPath)
	if err != nil {
		return err
	}
	s, err := serve.New(serve.Config{
		Registry:       reg,
		MaxBatch:       *maxBatch,
		BatchWindow:    *batchWindow,
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		RequestTimeout: *deadline,
		VerdictCache:   *vcache,
	})
	if err != nil {
		return err
	}

	// The profiling listener is opt-in and separate from the service
	// address, so profiles are never reachable through the public port. An
	// explicit mux carries only the pprof handlers — nothing rides along on
	// http.DefaultServeMux.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(out, "wimi-serve: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, pm); err != nil {
				fmt.Fprintf(os.Stderr, "wimi-serve: pprof listener: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	m := reg.Active()
	fmt.Fprintf(out, "wimi-serve: listening on %s (model %s from %s)\n",
		ln.Addr(), m.Version, m.Path)

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-serveErr:
			if err != nil && err != http.ErrServerClosed {
				return err
			}
			return nil
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if fresh, err := reg.Reload(); err != nil {
					fmt.Fprintf(out, "wimi-serve: reload failed, keeping %s: %v\n",
						reg.Active().Version, err)
				} else {
					fmt.Fprintf(out, "wimi-serve: model %s active (from %s)\n",
						fresh.Version, fresh.Path)
				}
				continue
			}
			// Graceful drain: stop accepting, finish what was admitted.
			fmt.Fprintf(out, "wimi-serve: %s received, draining...\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
			err := httpSrv.Shutdown(ctx)
			cancel()
			s.Shutdown()
			st := s.Stats()
			fmt.Fprintf(out, "wimi-serve: drained (served %d, shed %d, timeouts %d, failed %d)\n",
				st.Served, st.Shed, st.Timeouts, st.Failed)
			return err
		}
	}
}
