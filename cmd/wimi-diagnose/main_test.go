package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/material"
	"repro/internal/simulate"
	"repro/internal/trace"
)

func TestRunSimulatedSurvey(t *testing.T) {
	for _, env := range []string{"hall", "lab", "library"} {
		if err := run([]string{"-env", env, "-packets", "60"}); err != nil {
			t.Errorf("%s: %v", env, err)
		}
	}
}

func TestRunTraceSurvey(t *testing.T) {
	sc := simulate.Default()
	m, err := material.PaperDatabase().Get(material.Milk)
	if err != nil {
		t.Fatal(err)
	}
	sc.Liquid = &m
	sc.Packets = 60
	session, err := simulate.Session(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "survey.csitrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, sc.NumAntennas, sc.Carrier)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCapture(&session.Baseline); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-env", "cave"}); err == nil {
		t.Error("unknown environment should error")
	}
	if err := run([]string{"-trace", "/nonexistent"}); err == nil {
		t.Error("missing trace should error")
	}
	if err := run([]string{"-packets", "2"}); err == nil {
		t.Error("too-short survey should error")
	}
}
