// wimi-diagnose is the deployment site survey: given a CSI capture (a
// .csitrace file, or a simulated environment), it characterises the channel
// (delay spread, LoS dominance), runs the phase-calibration cascade and
// reports the good subcarriers and the most stable antenna pair — everything
// an operator needs to know before trusting material identification in a
// new room.
//
//	wimi-diagnose -trace room.csitrace
//	wimi-diagnose -env library            # simulate and survey
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chanest"
	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/mathx"
	"repro/internal/propagation"
	"repro/internal/trace"
	"repro/wimi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-diagnose:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wimi-diagnose", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "survey a recorded .csitrace capture")
		env       = fs.String("env", "lab", "simulate and survey this environment (when no -trace)")
		roomSeed  = fs.Int64("room-seed", 7, "room seed for the simulated survey")
		packets   = fs.Int("packets", 200, "packets for the simulated survey")
		p         = fs.Int("p", 4, "number of good subcarriers to select")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	capture, err := loadOrSimulate(*tracePath, *env, *roomSeed, *packets)
	if err != nil {
		return err
	}
	if capture.Len() < 8 {
		return fmt.Errorf("capture too short: %d packets", capture.Len())
	}
	fmt.Printf("survey over %d packets, %d antennas\n\n", capture.Len(), capture.NumAntennas())

	// 1. Channel characterisation.
	rep, err := chanest.Characterize(capture)
	if err != nil {
		return err
	}
	fmt.Printf("channel:   %s\n", rep)
	switch {
	case rep.RicianK > 5:
		fmt.Println("           → clean LoS-dominated link (hall-like)")
	case rep.RicianK > 1.5:
		fmt.Println("           → moderate multipath (lab-like)")
	default:
		fmt.Println("           → heavy multipath (library-like); expect reduced accuracy")
	}

	// 2. Phase-calibration cascade at a typical subcarrier.
	pair := core.AntennaPair{A: 0, B: 1}
	variances, err := core.SubcarrierVariances(capture, pair)
	if err != nil {
		return err
	}
	ref := mathx.ArgSort(variances)[csi.NumSubcarriers/2]
	cal, err := core.Calibrate(capture, pair, ref, *p)
	if err != nil {
		return err
	}
	fmt.Printf("\nphase calibration cascade (subcarrier %d as reference):\n", ref)
	fmt.Printf("  raw phase spread:            %6.1f°\n", cal.RawSpreadDeg)
	fmt.Printf("  antenna phase difference:    %6.1f°\n", cal.DiffSpreadDeg)
	fmt.Printf("  best good subcarrier:        %6.1f°\n", cal.GoodSpreadDeg)
	fmt.Printf("  good subcarriers (P=%d):      %v\n", *p, cal.GoodSubcarriers)

	// 3. Antenna pair ranking.
	if capture.NumAntennas() >= 3 {
		stats, err := core.RankPairs(capture, cal.GoodSubcarriers, core.DefaultConfig())
		if err != nil {
			return err
		}
		fmt.Println("\nantenna pairs (most stable first):")
		for _, s := range stats {
			fmt.Printf("  %-5s phase-var %.5f  ratio-var %.5f\n", s.Pair, s.PhaseVariance, s.RatioVariance)
		}
		fmt.Printf("recommended pair: %s\n", stats[0].Pair)
	}
	return nil
}

func loadOrSimulate(tracePath, env string, roomSeed int64, packets int) (*csi.Capture, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		r, err := trace.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tracePath, err)
		}
		return r.ReadAll()
	}
	environment, err := propagation.EnvironmentByName(env)
	if err != nil {
		return nil, err
	}
	sc := wimi.DefaultScenario()
	sc.Env = environment
	sc.RoomSeed = roomSeed
	sc.Packets = packets
	session, err := wimi.Simulate(sc, 1)
	if err != nil {
		return nil, err
	}
	return &session.Baseline, nil
}
