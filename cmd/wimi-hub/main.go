// wimi-hub is the fleet-scale streaming monitor: it multiplexes many
// concurrent CSI streams — simulated in-process vessels and/or real TCP
// sources collected through the resilient transport — through per-stream
// change-point detection, sliding-window segmentation, and pooled
// identification, and serves the aggregate fleet state over HTTP.
//
// Offline→online workflow:
//
//	wimi-sim -save-model /models/lab.json             # train offline, persist
//	wimi-hub -model /models/lab.json -streams 1000    # monitor a simulated fleet
//	curl localhost:8078/v1/fleet | jq .totals
//
// Real sources attach with -collect id=host:port (repeatable via commas);
// each gets a reconnecting collector that survives source restarts.
//
// Endpoints:
//
//	GET /v1/fleet   fleet snapshot: totals, last epoch, per-stream state
//	                machine + last verdict, event-log tail
//	GET /healthz    liveness
//	GET /readyz     readiness (every stream's detector has learned)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/csi"
	"repro/internal/material"
	"repro/internal/monitor"
	"repro/internal/monitorhub"
	"repro/internal/registry"
	"repro/internal/simulate"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wimi-hub:", err)
		os.Exit(1)
	}
}

// replaySource replays a shared packet template from a start offset. The
// template is read-only and shared by every stream of the same liquid —
// packet structs are copied per emission but the CSI matrices are shared,
// so a thousand streams cost one template's worth of matrix memory.
type replaySource struct {
	pkts  []csi.Packet
	next  int
	loop  bool
	wraps int
}

func (rs *replaySource) Next() (csi.Packet, error) {
	if rs.next >= len(rs.pkts) {
		if !rs.loop {
			return csi.Packet{}, io.EOF
		}
		rs.next = 0
		rs.wraps++
	}
	pkt := rs.pkts[rs.next]
	rs.next++
	return pkt, nil
}

// buildTemplate simulates one continuous stream: quiet, then the liquid,
// ending while the target is still present (so a finite replay leaves the
// last verdict standing).
func buildTemplate(liquid string, quietLen, targetLen int, seed int64) ([]csi.Packet, error) {
	sc := simulate.Default()
	m, err := material.PaperDatabase().Get(liquid)
	if err != nil {
		return nil, err
	}
	sc.Liquid = &m
	sc.Packets = quietLen + targetLen
	s, err := simulate.Session(sc, seed)
	if err != nil {
		return nil, err
	}
	pkts := make([]csi.Packet, 0, quietLen+targetLen)
	pkts = append(pkts, s.Baseline.Packets[:quietLen]...)
	pkts = append(pkts, s.Target.Packets[:targetLen]...)
	return pkts, nil
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wimi-hub", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8078", "fleet API listen address (port 0 picks a free port)")
		modelPath = fs.String("model", "", "model file or directory of model files (required)")
		streams   = fs.Int("streams", 8, "simulated vessel streams to drive")
		liquids   = fs.String("liquids", "honey,pure-water,soy", "comma-separated liquids cycled across simulated streams")
		interval  = fs.Duration("interval", 2*time.Millisecond, "per-stream packet pacing for simulated streams (0 = as fast as possible)")
		loop      = fs.Bool("loop", true, "loop simulated streams forever (false: one pass, then EOF)")
		collect   = fs.String("collect", "", "real TCP sources to attach, id=host:port comma-separated")
		workers   = fs.Int("workers", 0, "identification workers (0 = GOMAXPROCS)")
		pending   = fs.Int("pending", 2, "pending sessions per stream before the oldest is shed")
		confirm   = fs.Int("confirm", 2, "consecutive differing confident verdicts that confirm a material swap")
		floor     = fs.Float64("floor", 0.5, "confidence floor below which verdicts do not move the state machine")
		epoch     = fs.Duration("epoch", 5*time.Second, "fleet-stats aggregation epoch")
		baseline  = fs.Int("baseline", 30, "baseline packets each stream's detector learns from")
		rebase    = fs.Int("rebaseline", 0, "quiet packets after which a stream slowly re-learns its baseline (0 disables)")
		stride    = fs.Int("stride", 20, "target packets between successive sliding-window identifications")
		seed      = fs.Int64("seed", 1, "simulation seed")
		quietLen  = fs.Int("quiet", 40, "quiet packets before each simulated target")
		targetLen = fs.Int("target", 200, "target packets per simulated pass")
		batchMax  = fs.Int("batch", 0, "max sessions per cross-stream classification batch (0 = default)")
		linger    = fs.Duration("linger", 0, "how long a worker waits to fill a partial batch (0 = fire immediately)")
		pprofAddr = fs.String("pprof", "", "serve pprof on this address (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required (train one with: wimi-sim -save-model model.json)")
	}
	if *streams < 0 {
		return fmt.Errorf("-streams must be non-negative")
	}
	reg, err := registry.Open(*modelPath)
	if err != nil {
		return err
	}
	model := reg.Active()

	h, err := monitorhub.New(monitorhub.Config{
		Identifier: model.Identifier,
		Monitor: monitor.Config{
			BaselinePackets: *baseline,
			RebaselineAfter: *rebase,
		},
		Segment:          monitor.SegmenterOptions{Stride: *stride},
		Workers:          *workers,
		PendingPerStream: *pending,
		BatchMax:         *batchMax,
		BatchLinger:      *linger,
		ConfirmVerdicts:  *confirm,
		ConfidenceFloor:  *floor,
		EpochInterval:    *epoch,
	})
	if err != nil {
		return err
	}

	// Simulated fleet: one shared read-only template per liquid, streams
	// cycling across them. Start offsets stagger within the quiet prefix so
	// every stream still learns a true-quiet baseline.
	names := strings.Split(*liquids, ",")
	templates := make([][]csi.Packet, 0, len(names))
	for li, name := range names {
		tmpl, err := buildTemplate(strings.TrimSpace(name), *quietLen, *targetLen, *seed+int64(li)*7919)
		if err != nil {
			return err
		}
		templates = append(templates, tmpl)
	}
	offsets := *quietLen / 4
	if offsets < 1 {
		offsets = 1
	}
	for i := 0; i < *streams; i++ {
		tmpl := templates[i%len(templates)]
		// Offsets stay in the first quarter of the quiet prefix: the
		// remaining quiet run must still cover baseline learning plus the
		// segmenter's frozen-baseline window, or the stream never yields a
		// clean session.
		src := &replaySource{pkts: tmpl[i%offsets:], loop: *loop}
		id := fmt.Sprintf("sim-%04d-%s", i, strings.TrimSpace(names[i%len(names)]))
		if err := h.RegisterSource(id, src, *interval); err != nil {
			return err
		}
	}

	// Real sources: resilient collectors that redial through restarts.
	if *collect != "" {
		for _, spec := range strings.Split(*collect, ",") {
			id, target, found := strings.Cut(strings.TrimSpace(spec), "=")
			if !found || id == "" || target == "" {
				return fmt.Errorf("-collect %q: want id=host:port", spec)
			}
			err := h.RegisterCollector(id, transport.CollectorConfig{
				Addr:           target,
				MaxRetries:     2,
				InitialBackoff: 50 * time.Millisecond,
				MaxBackoff:     time.Second,
				ReadTimeout:    3 * time.Second,
			}, 250*time.Millisecond)
			if err != nil {
				return err
			}
		}
	}

	// Opt-in pprof on its own listener: profiling stays off the fleet API
	// port and is never reachable unless explicitly enabled.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(out, "wimi-hub: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, pm); err != nil {
				fmt.Fprintln(os.Stderr, "wimi-hub: pprof server:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wimi-hub: listening on %s (model %s, %d simulated streams)\n",
		ln.Addr(), model.Version, *streams)

	// Signals register before the listener serves: a SIGTERM racing the
	// first request must drain, not kill.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)

	httpSrv := &http.Server{Handler: h.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		h.Close()
		if err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	case sig := <-sigs:
		fmt.Fprintf(out, "wimi-hub: %s received, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		shutdownErr := httpSrv.Shutdown(ctx)
		cancel()
		h.Close() // stops ingest, finishes every pending identification
		t := h.Snapshot("", 0).Totals
		fmt.Fprintf(out, "wimi-hub: drained (%d streams, %d packets, %d sessions, %d identified, %d shed, %d events)\n",
			t.Streams, t.Packets, t.Sessions, t.Identified, t.Shed, t.Events)
		return shutdownErr
	}
}
