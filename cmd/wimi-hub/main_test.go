package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/transport"
	"repro/wimi"
)

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil || !strings.Contains(err.Error(), "-model") {
		t.Errorf("missing -model: %v", err)
	}
	if err := run([]string{"-not-a-flag"}, os.Stdout); err == nil {
		t.Error("bad flag should error")
	}
	if err := run([]string{"-model", "/does/not/exist.json"}, os.Stdout); err == nil {
		t.Error("missing model file should error")
	}
}

// trainFixtureModel trains a small three-liquid model matching the hub's
// default simulated fleet and saves it under t.TempDir.
func trainFixtureModel(t *testing.T) string {
	t.Helper()
	var sessions []*wimi.Session
	var labels []string
	for li, name := range []string{wimi.Honey, wimi.PureWater, wimi.Soy} {
		m, err := wimi.Liquid(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := wimi.DefaultScenario()
		sc.Liquid = &m
		set, err := wimi.SimulateTrials(sc, 4, int64(li)*1_000_003+1)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range set {
			sessions = append(sessions, s)
			labels = append(labels, name)
		}
	}
	id, err := wimi.Train(sessions, labels, wimi.DefaultTrainingConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wimi.SaveIdentifier(id, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func buildBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// seqSource endlessly replays a template with fresh sequence numbers drawn
// from a counter shared across connections, like a live NIC.
type seqSource struct {
	pkts []csi.Packet
	next int
	seq  *atomic.Uint32
}

func (ss *seqSource) Next() (csi.Packet, error) {
	pkt := ss.pkts[ss.next]
	ss.next = (ss.next + 1) % len(ss.pkts)
	pkt.Seq = ss.seq.Add(1)
	return pkt, nil
}

func startSourceServer(t *testing.T, addr string, pkts []csi.Packet, seq *atomic.Uint32) *transport.Server {
	t.Helper()
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:     addr,
		NumAnt:   pkts[0].CSI.NumAntennas(),
		Carrier:  5.32e9,
		Interval: time.Millisecond,
		NewSource: func() (transport.PacketSource, error) {
			return &seqSource{pkts: pkts, seq: seq}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// fleetBody mirrors the /v1/fleet JSON shape the smoke test reads.
type fleetBody struct {
	Totals struct {
		Streams    int    `json:"streams"`
		Packets    uint64 `json:"packets"`
		Sessions   uint64 `json:"sessions"`
		Identified uint64 `json:"identified"`
		Shed       uint64 `json:"shed"`
	} `json:"totals"`
	Streams []struct {
		ID        string `json:"id"`
		State     string `json:"state"`
		Confirmed string `json:"confirmed"`
		Pending   int    `json:"pending"`
	} `json:"streams"`
}

func getFleet(t *testing.T, client *http.Client, base string) (fleetBody, error) {
	t.Helper()
	var body fleetBody
	resp, err := client.Get(base + "/v1/fleet?events=0")
	if err != nil {
		return body, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != 200 {
		return body, fmt.Errorf("/v1/fleet: %d", resp.StatusCode)
	}
	return body, json.NewDecoder(resp.Body).Decode(&body)
}

// TestHubSmoke is the binary-level fleet drill behind `make hub-smoke`:
// wimi-hub drives 1000 simulated streams plus one real TCP source; the
// fleet must converge (≥95% of simulated streams confirm their liquid, the
// collected stream confirms honey), survive the TCP source being killed and
// restarted mid-run, and drain cleanly on SIGTERM with zero pending work.
func TestHubSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("hub smoke drill")
	}
	dir := t.TempDir()
	hubBin := buildBinary(t, dir, "wimi-hub", "repro/cmd/wimi-hub")
	model := trainFixtureModel(t)

	// One real TCP source streaming honey on a loop.
	tmpl, err := buildTemplate("honey", 40, 160, 77)
	if err != nil {
		t.Fatal(err)
	}
	seq := new(atomic.Uint32)
	srv := startSourceServer(t, "127.0.0.1:0", tmpl, seq)
	srvAddr := srv.Addr().String()
	defer func() { _ = srv.Close() }()

	proc := exec.Command(hubBin,
		"-addr", "127.0.0.1:0",
		"-model", model,
		"-streams", "1000",
		"-interval", "2ms",
		"-loop=false",
		"-collect", "line-a="+srvAddr,
		"-epoch", "500ms",
		// Cross-stream batching explicitly on: convergence must hold when
		// verdicts come out of shared classification batches.
		"-batch", "8",
		"-linger", "200us",
	)
	stdout, err := proc.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	proc.Stderr = os.Stderr
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proc.Process.Kill() }()

	lineCh := make(chan string, 64)
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			lineCh <- scanner.Text()
		}
		close(lineCh)
	}()
	var addr string
	deadline := time.After(60 * time.Second)
	for addr == "" {
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatal("wimi-hub exited before announcing its address")
			}
			if _, rest, found := strings.Cut(line, "listening on "); found {
				addr = strings.Fields(rest)[0]
			}
		case <-deadline:
			t.Fatal("timed out waiting for wimi-hub to listen")
		}
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}

	waitFleet := func(what string, budget time.Duration, ok func(fleetBody) bool) fleetBody {
		t.Helper()
		end := time.Now().Add(budget)
		var last fleetBody
		for {
			body, err := getFleet(t, client, base)
			if err == nil {
				last = body
				if ok(body) {
					return body
				}
			}
			if time.Now().After(end) {
				t.Fatalf("%s: never happened (totals %+v)", what, last.Totals)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Convergence: ≥95% of the 1000 simulated streams confirm the liquid
	// their ID carries, and the collected stream confirms honey.
	snap := waitFleet("fleet convergence", 90*time.Second, func(b fleetBody) bool {
		sim, collected := 0, false
		for _, s := range b.Streams {
			if strings.HasPrefix(s.ID, "sim-") && s.Confirmed != "" && strings.HasSuffix(s.ID, s.Confirmed) {
				sim++
			}
			if s.ID == "line-a" && s.Confirmed == "honey" {
				collected = true
			}
		}
		return sim >= 950 && collected
	})
	if snap.Totals.Streams != 1001 {
		t.Fatalf("fleet has %d streams, want 1001", snap.Totals.Streams)
	}
	t.Logf("converged: %d streams, %d packets, %d sessions, %d identified, %d shed",
		snap.Totals.Streams, snap.Totals.Packets, snap.Totals.Sessions,
		snap.Totals.Identified, snap.Totals.Shed)

	// Kill the TCP source mid-run: the collected stream must go down while
	// the rest of the fleet stays up, then recover once the source is back
	// on the same address.
	_ = srv.Close()
	waitFleet("killed source flagged down", 30*time.Second, func(b fleetBody) bool {
		for _, s := range b.Streams {
			if s.ID == "line-a" {
				return s.State == "down"
			}
		}
		return false
	})
	srv = startSourceServer(t, srvAddr, tmpl, seq)
	waitFleet("killed source recovered", 60*time.Second, func(b fleetBody) bool {
		for _, s := range b.Streams {
			if s.ID == "line-a" {
				return s.State != "down" && s.Confirmed == "honey"
			}
		}
		return false
	})

	// Graceful drain: SIGTERM must flush pending work and exit zero.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	drained := false
	for line := range lineCh {
		if strings.Contains(line, "drained") {
			drained = true
		}
	}
	if err := proc.Wait(); err != nil {
		t.Fatalf("wimi-hub exit: %v", err)
	}
	if !drained {
		t.Fatal("wimi-hub never reported a drain summary")
	}
	fmt.Println("hub-smoke: ok")
}

// TestHubPprofEndpoint spawns the binary with -pprof on an ephemeral port
// and asserts the profiling index is reachable there — and only there: the
// separate listener keeps /debug/pprof/ off the fleet API port.
func TestHubPprofEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("binary spawn")
	}
	dir := t.TempDir()
	hubBin := buildBinary(t, dir, "wimi-hub", "repro/cmd/wimi-hub")
	model := trainFixtureModel(t)

	proc := exec.Command(hubBin,
		"-addr", "127.0.0.1:0",
		"-model", model,
		"-streams", "2",
		"-loop=false",
		"-batch", "4",
		"-pprof", "127.0.0.1:0",
	)
	stdout, err := proc.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	proc.Stderr = os.Stderr
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = proc.Process.Kill() }()

	var apiAddr, pprofURL string
	scanner := bufio.NewScanner(stdout)
	deadline := time.Now().Add(60 * time.Second)
	for (apiAddr == "" || pprofURL == "") && time.Now().Before(deadline) && scanner.Scan() {
		line := scanner.Text()
		if _, rest, found := strings.Cut(line, "listening on "); found {
			apiAddr = strings.Fields(rest)[0]
		}
		if _, rest, found := strings.Cut(line, "pprof on "); found {
			pprofURL = strings.Fields(rest)[0]
		}
	}
	if pprofURL == "" {
		t.Fatal("wimi-hub never announced its pprof listener")
	}
	if apiAddr == "" {
		t.Fatal("wimi-hub never announced its API listener")
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(pprofURL)
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index: status %d, want 200", resp.StatusCode)
	}
	// The fleet API port must NOT serve the profiler.
	resp, err = client.Get("http://" + apiAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET api /debug/pprof/: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("fleet API port serves /debug/pprof/; want it confined to -pprof listener")
	}
}

// TestHubListensAndServesHealth is the fast-path check (not skipped in
// -short): a tiny hub comes up, serves /healthz, and shuts down cleanly.
func TestHubListensAndServesHealth(t *testing.T) {
	model := trainFixtureModel(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-model", model, "-streams", "2", "-loop=false"}, os.Stdout)
	}()
	client := &http.Client{Timeout: 2 * time.Second}
	end := time.Now().Add(20 * time.Second)
	for {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(end) {
			t.Fatal("hub never served /healthz")
		}
		time.Sleep(50 * time.Millisecond)
	}
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	// Deliver SIGTERM to ourselves: run's signal handler owns the drain.
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run never drained after SIGTERM")
	}
}
