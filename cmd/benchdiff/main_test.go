package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFixture(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseRecord = `{
  "date": "2026-08-01T00:00:00Z",
  "total_wall_ns": 10000000000,
  "experiments": [
    {"name": "fig7", "wall_ns": 1000000},
    {"name": "fig17", "wall_ns": 4000000000}
  ],
  "micro": [
    {"name": "fft-plan-transform-64", "ns_per_op": 1000, "allocs_per_op": 0, "bytes_per_op": 0}
  ]
}`

func TestWithinThresholdPasses(t *testing.T) {
	old := writeFixture(t, "old.json", baseRecord)
	// 10% slower everywhere: under the 15% gate.
	new_ := writeFixture(t, "new.json", `{
  "date": "2026-08-02T00:00:00Z",
  "total_wall_ns": 11000000000,
  "experiments": [
    {"name": "fig7", "wall_ns": 1100000},
    {"name": "fig17", "wall_ns": 4400000000}
  ],
  "micro": [
    {"name": "fft-plan-transform-64", "ns_per_op": 1100, "allocs_per_op": 0, "bytes_per_op": 0}
  ]
}`)
	code, err := run([]string{old, new_}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code %d for a within-threshold record, want 0", code)
	}
}

func TestTotalWallRegressionFails(t *testing.T) {
	old := writeFixture(t, "old.json", baseRecord)
	new_ := writeFixture(t, "new.json", `{
  "date": "2026-08-02T00:00:00Z",
  "total_wall_ns": 13000000000,
  "experiments": [
    {"name": "fig7", "wall_ns": 1000000},
    {"name": "fig17", "wall_ns": 4000000000}
  ],
  "micro": []
}`)
	code, err := run([]string{old, new_}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code %d for a 30%% total regression, want 1", code)
	}
	// A looser threshold lets the same pair pass.
	code, err = run([]string{"-threshold", "0.5", old, new_}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code %d at threshold 0.5, want 0", code)
	}
}

func TestExperimentRegressionFails(t *testing.T) {
	old := writeFixture(t, "old.json", baseRecord)
	new_ := writeFixture(t, "new.json", `{
  "date": "2026-08-02T00:00:00Z",
  "total_wall_ns": 10000000000,
  "experiments": [
    {"name": "fig7", "wall_ns": 1000000},
    {"name": "fig17", "wall_ns": 6000000000}
  ],
  "micro": []
}`)
	code, err := run([]string{old, new_}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code %d for a 50%% fig17 regression, want 1", code)
	}
}

func TestTinyExperimentBelowFloorNotGated(t *testing.T) {
	old := writeFixture(t, "old.json", baseRecord)
	// fig7 goes from 1ms to 3ms (200% worse) but sits below the 50ms floor,
	// where scheduler jitter dominates — reported, not gated.
	new_ := writeFixture(t, "new.json", `{
  "date": "2026-08-02T00:00:00Z",
  "total_wall_ns": 10000000000,
  "experiments": [
    {"name": "fig7", "wall_ns": 3000000},
    {"name": "fig17", "wall_ns": 4000000000}
  ],
  "micro": []
}`)
	code, err := run([]string{old, new_}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code %d for a sub-floor experiment blip, want 0", code)
	}
}

func TestMicroNsAndAllocRegressionsFail(t *testing.T) {
	old := writeFixture(t, "old.json", baseRecord)
	slowMicro := writeFixture(t, "slow.json", `{
  "date": "2026-08-02T00:00:00Z",
  "total_wall_ns": 10000000000,
  "experiments": [],
  "micro": [
    {"name": "fft-plan-transform-64", "ns_per_op": 2000, "allocs_per_op": 0, "bytes_per_op": 0}
  ]
}`)
	code, err := run([]string{old, slowMicro}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code %d for a 2x micro ns/op regression, want 1", code)
	}
	allocMicro := writeFixture(t, "alloc.json", `{
  "date": "2026-08-02T00:00:00Z",
  "total_wall_ns": 10000000000,
  "experiments": [],
  "micro": [
    {"name": "fft-plan-transform-64", "ns_per_op": 1000, "allocs_per_op": 3, "bytes_per_op": 96}
  ]
}`)
	code, err = run([]string{old, allocMicro}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code %d for an alloc-free op starting to allocate, want 1", code)
	}
}

// TestHubStreamsAllocRegressionFails pins that the hub-path micros ride the
// same gate as everything else: an allocs/op regression on a
// BenchmarkHubStreams entry fails the diff even when its ns/op improved.
func TestHubStreamsAllocRegressionFails(t *testing.T) {
	old := writeFixture(t, "old.json", `{
  "date": "2026-08-01T00:00:00Z",
  "total_wall_ns": 10000000000,
  "experiments": [],
  "micro": [
    {"name": "BenchmarkHubStreams/stride-heavy", "ns_per_op": 130000000, "allocs_per_op": 1200, "bytes_per_op": 1000000}
  ]
}`)
	worse := writeFixture(t, "worse.json", `{
  "date": "2026-08-02T00:00:00Z",
  "total_wall_ns": 10000000000,
  "experiments": [],
  "micro": [
    {"name": "BenchmarkHubStreams/stride-heavy", "ns_per_op": 30000000, "allocs_per_op": 2400, "bytes_per_op": 1000000}
  ]
}`)
	code, err := run([]string{old, worse}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code %d for a 2x hub-stream allocs/op regression, want 1", code)
	}
}

func TestBadInputsError(t *testing.T) {
	old := writeFixture(t, "old.json", baseRecord)
	if code, err := run([]string{old}, os.Stdout); err == nil || code != 2 {
		t.Errorf("missing arg: code=%d err=%v, want usage error", code, err)
	}
	if code, err := run([]string{old, filepath.Join(t.TempDir(), "absent.json")}, os.Stdout); err == nil || code != 2 {
		t.Errorf("missing file: code=%d err=%v, want error", code, err)
	}
	junk := writeFixture(t, "junk.json", `{"unrelated": true}`)
	if code, err := run([]string{old, junk}, os.Stdout); err == nil || code != 2 {
		t.Errorf("non-record JSON: code=%d err=%v, want error", code, err)
	}
}
