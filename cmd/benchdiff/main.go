// benchdiff compares two benchmark records written by wimi-bench
// -bench-json and fails (exit 1) when the new record regresses past the
// threshold — the pre-merge performance gate behind `make bench-compare`:
//
//	benchdiff BENCH_old.json BENCH_new.json
//	benchdiff -threshold 0.10 old.json new.json
//
// Gated quantities: total wall time, per-experiment wall time (experiments
// faster than -min-wall in the old record are reported but not gated — at
// millisecond scale the scheduler, not the code, decides), microbenchmark
// ns/op, and — against -alloc-threshold — allocs/op and bytes/op.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

type benchReport struct {
	Date       string            `json:"date"`
	TotalWall  int64             `json:"total_wall_ns"`
	Experiment []benchExperiment `json:"experiments"`
	Micro      []benchMicro      `json:"micro"`
}

type benchExperiment struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`
}

type benchMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run returns 0 when the new record is within threshold, 1 when it
// regresses; usage or I/O problems surface as an error (exit 2).
func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.15, "fail when a gated quantity slows by more than this fraction")
	allocThreshold := fs.Float64("alloc-threshold", 0.15, "fail when a micro's allocs/op or bytes/op grows by more than this fraction")
	minWall := fs.Duration("min-wall", 50*time.Millisecond, "per-experiment gate floor: faster old-record experiments are not gated")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("usage: benchdiff [flags] OLD.json NEW.json")
	}
	oldRep, err := load(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		return 2, err
	}

	var regressions []string
	gate := func(name string, oldV, newV float64, gated bool) {
		if oldV <= 0 {
			return
		}
		delta := newV/oldV - 1
		marker := " "
		if gated && delta > *threshold {
			marker = "!"
			regressions = append(regressions, fmt.Sprintf("%s: %+.1f%%", name, delta*100))
		}
		fmt.Fprintf(out, "%s %-40s %12.0f -> %12.0f  (%+.1f%%)\n", marker, name, oldV, newV, delta*100)
	}

	fmt.Fprintf(out, "old: %s (%s)\nnew: %s (%s)\n\n", fs.Arg(0), oldRep.Date, fs.Arg(1), newRep.Date)
	gate("total wall ns", float64(oldRep.TotalWall), float64(newRep.TotalWall), true)

	newExp := make(map[string]benchExperiment, len(newRep.Experiment))
	for _, e := range newRep.Experiment {
		newExp[e.Name] = e
	}
	oldExp := make(map[string]struct{}, len(oldRep.Experiment))
	for _, e := range oldRep.Experiment {
		oldExp[e.Name] = struct{}{}
		n, ok := newExp[e.Name]
		if !ok {
			fmt.Fprintf(out, "- exp %-38s removed (only in old record)\n", e.Name)
			continue
		}
		gate("exp "+e.Name+" wall ns", float64(e.WallNs), float64(n.WallNs), e.WallNs >= minWall.Nanoseconds())
	}
	// Experiments that exist only in the new record have no baseline to gate
	// against, but a newly wired benchmark should be visible on its first
	// comparison, not silently skipped.
	for _, e := range newRep.Experiment {
		if _, ok := oldExp[e.Name]; !ok {
			fmt.Fprintf(out, "+ exp %-38s added (%d ns, not gated)\n", e.Name, e.WallNs)
		}
	}

	newMicro := make(map[string]benchMicro, len(newRep.Micro))
	for _, m := range newRep.Micro {
		newMicro[m.Name] = m
	}
	oldMicro := make(map[string]struct{}, len(oldRep.Micro))
	for _, m := range oldRep.Micro {
		oldMicro[m.Name] = struct{}{}
		n, ok := newMicro[m.Name]
		if !ok {
			fmt.Fprintf(out, "- micro %-36s removed (only in old record)\n", m.Name)
			continue
		}
		gate("micro "+m.Name+" ns/op", m.NsPerOp, n.NsPerOp, true)
		// Allocation regressions need an absolute component too: going from
		// 0.001 to 0.002 amortised allocs is noise, 10 to 12 is not.
		if n.AllocsPerOp > m.AllocsPerOp*(1+*allocThreshold) && n.AllocsPerOp > m.AllocsPerOp+0.5 {
			regressions = append(regressions, fmt.Sprintf("micro %s allocs/op: %.2f -> %.2f", m.Name, m.AllocsPerOp, n.AllocsPerOp))
			fmt.Fprintf(out, "! micro %-34s allocs/op %.2f -> %.2f\n", m.Name, m.AllocsPerOp, n.AllocsPerOp)
		}
		// Same for bytes/op: the absolute floor (64 B) keeps tiny amortised
		// pool refills from tripping the relative gate.
		if n.BytesPerOp > m.BytesPerOp*(1+*allocThreshold) && n.BytesPerOp > m.BytesPerOp+64 {
			regressions = append(regressions, fmt.Sprintf("micro %s bytes/op: %.0f -> %.0f", m.Name, m.BytesPerOp, n.BytesPerOp))
			fmt.Fprintf(out, "! micro %-34s bytes/op  %.0f -> %.0f\n", m.Name, m.BytesPerOp, n.BytesPerOp)
		}
	}
	for _, m := range newRep.Micro {
		if _, ok := oldMicro[m.Name]; !ok {
			fmt.Fprintf(out, "+ micro %-36s added (%.0f ns/op, not gated)\n", m.Name, m.NsPerOp)
		}
	}

	if len(regressions) > 0 {
		fmt.Fprintf(out, "\nFAIL: %d regression(s) beyond %.0f%%:\n", len(regressions), *threshold*100)
		for _, r := range regressions {
			fmt.Fprintln(out, "  ", r)
		}
		return 1, nil
	}
	fmt.Fprintf(out, "\nOK: within %.0f%% of the old record\n", *threshold*100)
	return 0, nil
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.TotalWall == 0 && len(rep.Experiment) == 0 {
		return nil, fmt.Errorf("%s: not a wimi-bench -bench-json record", path)
	}
	return &rep, nil
}
